#include "engine/qat_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/log.h"
#include "crypto/gcm.h"

namespace qtls::engine {

namespace {
constexpr uint8_t kClosed = static_cast<uint8_t>(BreakerState::kClosed);
constexpr uint8_t kOpen = static_cast<uint8_t>(BreakerState::kOpen);
constexpr uint8_t kHalfOpen = static_cast<uint8_t>(BreakerState::kHalfOpen);

// Global-registry mirrors of the QatEngineStats failure counters, so the
// /stats endpoint and periodic dumps see every provider's totals without
// walking provider instances. Interned once; increments are shard-local.
struct EngineObsCounters {
  obs::Counter submitted, completed, submit_retry, device_error, retry,
      deadline_expiry, sw_fallback, breaker_open, breaker_close, seal_batch,
      seal_batch_op, migration, lane_spill, lane_open, lane_close, remote_op,
      remote_completed, remote_expiry, remote_failure, remote_batch,
      remote_breaker_open, remote_breaker_close;

  EngineObsCounters() {
    auto& reg = obs::MetricsRegistry::global();
    submitted = reg.counter("qat.engine.submitted");
    completed = reg.counter("qat.engine.completed");
    submit_retry = reg.counter("qat.engine.submit_retry");
    device_error = reg.counter("qat.engine.device_error");
    retry = reg.counter("qat.engine.retry");
    deadline_expiry = reg.counter("qat.engine.deadline_expiry");
    sw_fallback = reg.counter("qat.engine.sw_fallback");
    breaker_open = reg.counter("qat.engine.breaker_open");
    breaker_close = reg.counter("qat.engine.breaker_close");
    seal_batch = reg.counter("qat.engine.seal_batch");
    seal_batch_op = reg.counter("qat.engine.seal_batch_op");
    migration = reg.counter("qat.engine.migration");
    lane_spill = reg.counter("qat.engine.lane_spillover");
    lane_open = reg.counter("qat.engine.lane_breaker_open");
    lane_close = reg.counter("qat.engine.lane_breaker_close");
    remote_op = reg.counter("qat.engine.remote_op");
    remote_completed = reg.counter("qat.engine.remote_completed");
    remote_expiry = reg.counter("qat.engine.remote_expiry");
    remote_failure = reg.counter("qat.engine.remote_failure");
    remote_batch = reg.counter("qat.engine.remote_batch");
    remote_breaker_open = reg.counter("qat.engine.remote_breaker_open");
    remote_breaker_close = reg.counter("qat.engine.remote_breaker_close");
  }
};

EngineObsCounters& obs_counters() {
  static EngineObsCounters counters;
  return counters;
}

// TX copy meter shared with tls/record.cc and engine/provider.cc — the
// engine appending a retrieved seal result into the output block is a
// staging copy on the TX path (the input marshalling into the compute
// closure models the device DMA and is deliberately not counted).
obs::Counter& record_bytes_copied() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("record.bytes_copied");
  return c;
}
}  // namespace

// Generic holder for a completed offload; `done` flips in the response
// callback (polling context), after `compute` ran on an engine thread.
// Derives the type-erased OpStateBase so the deadline sweep can track it.
template <typename T>
struct TypedOpState : QatEngineProvider::OpStateBase {
  Result<T> result = Status(Code::kInternal, "not computed");
};

QatEngineProvider::QatEngineProvider(qat::CryptoInstance* instance,
                                     QatEngineConfig config)
    : QatEngineProvider(std::vector<qat::CryptoInstance*>{instance}, config) {}

QatEngineProvider::QatEngineProvider(
    std::vector<qat::CryptoInstance*> instances, QatEngineConfig config)
    : instances_(std::move(instances)),
      config_(config),
      fallback_(config.drbg_seed ^ 0x5a5a5a5aULL) {
  assert(!instances_.empty());
  // Legacy single-device form: one lane, device id 0, no topology. The
  // lane machinery stays out of the submit path for this shape (see
  // lane_allowed), preserving the pre-topology behavior exactly.
  auto lane = std::make_unique<DeviceLane>();
  lane->device_id = 0;
  lane->instances = instances_;
  lanes_.push_back(std::move(lane));
  for (auto& c : inflight_) c.store(0, std::memory_order_relaxed);
}

QatEngineProvider::QatEngineProvider(qat::DeviceTopology* topology,
                                     int preferred_device,
                                     std::vector<DeviceInstanceSet> sets,
                                     QatEngineConfig config)
    : topology_(topology),
      preferred_device_(preferred_device),
      config_(config),
      fallback_(config.drbg_seed ^ 0x5a5a5a5aULL) {
  assert(!sets.empty());
  for (DeviceInstanceSet& set : sets) {
    assert(!set.instances.empty());
    auto lane = std::make_unique<DeviceLane>();
    lane->device_id = set.device_id;
    lane->instances = set.instances;
    if (topology_)
      lane->seen_generation.store(topology_->generation(),
                                  std::memory_order_relaxed);
    for (qat::CryptoInstance* inst : set.instances)
      instances_.push_back(inst);
    lanes_.push_back(std::move(lane));
  }
  for (auto& c : inflight_) c.store(0, std::memory_order_relaxed);
}

size_t QatEngineProvider::poll(size_t max) {
  // One pass over every assigned instance (§2.3: a process may hold
  // instances on several endpoints); each instance drains its MPSC
  // response ring in batches.
  size_t got = 0;
  for (qat::CryptoInstance* inst : instances_) {
    got += inst->poll(max - got);
    if (got >= max) break;
  }
  ++stats_.polls;
  stats_.polled_responses += got;
  if (got > stats_.max_poll_batch) stats_.max_poll_batch = got;
  // The deadline sweep piggybacks on the poll cadence: the worker's
  // failover poll timer keeps polling while ops are in flight, which bounds
  // how late an expiry is observed.
  if (config_.op_deadline_us != 0) sweep_deadlines(steady_now_ns());
  // So does the remote channel: pump() drives TX/RX, fires completions
  // (waking parked fibers through their WaitCtx), expires past-deadline
  // inflight ops, and flushes an aged coalescing window.
  if (remote_) remote_->pump();
  return got;
}

uint64_t QatEngineProvider::steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t QatEngineProvider::pending_deadline_ops() const {
  std::lock_guard<std::mutex> lk(pending_mu_);
  return pending_.size();
}

void QatEngineProvider::sweep_deadlines(uint64_t now) {
  std::lock_guard<std::mutex> lk(pending_mu_);
  for (auto it = pending_.begin(); it != pending_.end();) {
    OpStateBase* s = it->get();
    if (s->done.load(std::memory_order_acquire) ||
        s->abandoned.load(std::memory_order_acquire)) {
      it = pending_.erase(it);
      continue;
    }
    if (now >= s->deadline_ns) {
      // Expire: release the heuristic-poller slot here because the response
      // callback (if a late response ever shows up) returns early on the
      // abandoned flag without touching the counter.
      s->abandoned.store(true, std::memory_order_release);
      inflight_[s->cls].fetch_sub(1, std::memory_order_release);
      ++stats_.deadline_expiries;
      obs_counters().deadline_expiry.inc();
      if (s->wctx) s->wctx->notify();
      it = pending_.erase(it);
      continue;
    }
    ++it;
  }
}

bool QatEngineProvider::offload_allowed(qat::OpClass cls) {
  ClassBreaker& b = breakers_[static_cast<int>(cls)];
  const uint8_t st = b.state.load(std::memory_order_acquire);
  if (st == kClosed) return true;  // hot path: one load, no clock read
  if (st == kOpen) {
    if (steady_now_ns() >= b.open_until_ns.load(std::memory_order_acquire)) {
      // Cooldown elapsed: exactly one op wins the CAS and becomes the
      // half-open probe; everyone else keeps falling back until it lands.
      uint8_t expected = kOpen;
      return b.state.compare_exchange_strong(expected, kHalfOpen,
                                             std::memory_order_acq_rel);
    }
    return false;
  }
  return false;  // kHalfOpen: probe in flight
}

void QatEngineProvider::breaker_on_success(qat::OpClass cls) {
  ClassBreaker& b = breakers_[static_cast<int>(cls)];
  if (b.consecutive_failures.load(std::memory_order_relaxed) != 0)
    b.consecutive_failures.store(0, std::memory_order_relaxed);
  if (b.state.load(std::memory_order_acquire) != kClosed) {
    b.state.store(kClosed, std::memory_order_release);
    ++stats_.breaker_closes;
    obs_counters().breaker_close.inc();
    QTLS_INFO << "qat breaker closed for class " << static_cast<int>(cls)
              << " (re-probe succeeded)";
  }
}

void QatEngineProvider::breaker_on_failure(qat::OpClass cls) {
  ClassBreaker& b = breakers_[static_cast<int>(cls)];
  const int fails =
      b.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint8_t st = b.state.load(std::memory_order_acquire);
  if (st == kHalfOpen) {
    // Probe failed: reopen for another cooldown.
    b.open_until_ns.store(
        steady_now_ns() + config_.breaker_cooldown_ms * 1'000'000ULL,
        std::memory_order_release);
    b.state.store(kOpen, std::memory_order_release);
    ++stats_.breaker_opens;
    obs_counters().breaker_open.inc();
  } else if (st == kClosed && fails >= config_.breaker_threshold) {
    b.open_until_ns.store(
        steady_now_ns() + config_.breaker_cooldown_ms * 1'000'000ULL,
        std::memory_order_release);
    b.state.store(kOpen, std::memory_order_release);
    ++stats_.breaker_opens;
    obs_counters().breaker_open.inc();
    QTLS_WARN << "qat breaker open for class " << static_cast<int>(cls)
              << " after " << fails
              << " consecutive failures; degrading to software";
  }
}

// ------------------------------------------------------- remote tier ----

bool QatEngineProvider::remote_tier_available() {
  if (!remote_ || !remote_->alive()) return false;
  ClassBreaker& b = remote_breaker_;
  const uint8_t st = b.state.load(std::memory_order_acquire);
  if (st == kClosed) return true;
  if (st == kOpen) {
    if (steady_now_ns() >= b.open_until_ns.load(std::memory_order_acquire)) {
      uint8_t expected = kOpen;
      return b.state.compare_exchange_strong(expected, kHalfOpen,
                                             std::memory_order_acq_rel);
    }
    return false;
  }
  return false;  // kHalfOpen: probe in flight
}

bool QatEngineProvider::remote_tier_live() const {
  // A half-open tier still counts as live: a probe is in flight and may
  // restore it, so the class must not degrade past it to software yet.
  return remote_ && remote_->alive() &&
         remote_breaker_.state.load(std::memory_order_acquire) != kOpen;
}

void QatEngineProvider::remote_on_success() {
  ClassBreaker& b = remote_breaker_;
  if (b.consecutive_failures.load(std::memory_order_relaxed) != 0)
    b.consecutive_failures.store(0, std::memory_order_relaxed);
  if (b.state.load(std::memory_order_acquire) != kClosed) {
    b.state.store(kClosed, std::memory_order_release);
    ++stats_.remote_breaker_closes;
    obs_counters().remote_breaker_close.inc();
    QTLS_INFO << "remote offload tier recovered (re-probe succeeded)";
  }
}

void QatEngineProvider::remote_on_failure() {
  ClassBreaker& b = remote_breaker_;
  const int fails =
      b.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint8_t st = b.state.load(std::memory_order_acquire);
  const bool open_now =
      st == kHalfOpen ||
      (st == kClosed && fails >= config_.remote_breaker_threshold);
  if (!open_now) return;
  b.open_until_ns.store(
      steady_now_ns() + config_.remote_breaker_cooldown_ms * 1'000'000ULL,
      std::memory_order_release);
  b.state.store(kOpen, std::memory_order_release);
  ++stats_.remote_breaker_opens;
  obs_counters().remote_breaker_open.inc();
  QTLS_WARN << "remote offload tier tripped after " << fails
            << " consecutive failures; ladder skips to software";
}

std::string QatEngineProvider::remote_json() const {
  const char* st = "closed";
  switch (remote_breaker_state()) {
    case BreakerState::kClosed: st = "closed"; break;
    case BreakerState::kOpen: st = "open"; break;
    case BreakerState::kHalfOpen: st = "half_open"; break;
  }
  std::ostringstream os;
  os << "{\"attached\":" << (remote_ ? "true" : "false") << ",\"breaker\":\""
     << st << "\",\"ops\":" << stats_.remote_ops
     << ",\"completed\":" << stats_.remote_completed
     << ",\"expiries\":" << stats_.remote_expiries
     << ",\"failures\":" << stats_.remote_failures
     << ",\"batches\":" << stats_.remote_batches
     << ",\"breaker_opens\":" << stats_.remote_breaker_opens
     << ",\"breaker_closes\":" << stats_.remote_breaker_closes
     << ",\"channel\":" << (remote_ ? remote_->stats_json() : "null") << "}";
  return os.str();
}

namespace {
// Per-op wait shared between the submitting fiber/thread and the channel
// completion (which fires from pump(), possibly on the polling pass).
struct RemoteWait {
  std::atomic<bool> done{false};
  remote::RemoteStatus status = remote::RemoteStatus::kChannelDown;
  Bytes payload;
  asyncx::WaitCtx* wctx = nullptr;
};
}  // namespace

template <typename T>
bool QatEngineProvider::try_remote(qat::OpClass cls, const RemoteSpec<T>& spec,
                                   Result<T>* out) {
  if (!remote_tier_available()) return false;

  asyncx::AsyncJob* job = asyncx::get_current_job();
  const bool async = config_.offload_mode == OffloadMode::kAsync && job;
  asyncx::WaitCtx* wctx = async ? job->wait_ctx() : nullptr;

  ++stats_.remote_ops;
  obs_counters().remote_op.inc();

  auto wait = std::make_shared<RemoteWait>();
  wait->wctx = wctx;

  // Counted like a device submission so the heuristic poller keeps the
  // poll cadence up — poll() is also what pumps the channel.
  inflight_[static_cast<int>(cls)].fetch_add(1, std::memory_order_release);

  const uint64_t deadline_ns =
      config_.remote_op_deadline_us == 0
          ? 0
          : steady_now_ns() + config_.remote_op_deadline_us * 1'000ULL;

  const bool accepted = remote_->submit(
      spec.op, spec.encode(), deadline_ns,
      [wait](remote::RemoteStatus st, BytesView payload) {
        wait->status = st;
        wait->payload.assign(payload.begin(), payload.end());
        wait->done.store(true, std::memory_order_release);
        if (wait->wctx) wait->wctx->notify();
      });
  if (!accepted) {
    inflight_[static_cast<int>(cls)].fetch_sub(1, std::memory_order_release);
    ++stats_.remote_failures;
    obs_counters().remote_failure.inc();
    remote_on_failure();
    return false;
  }
  // Single ops flush eagerly: a half-built handshake is latency-bound, so
  // it never waits out the coalescing window. The seal-batch path is the
  // one that amortizes (N submits, one flush, one frame).
  remote_->flush();

  if (async) {
    // The worker's poll cadence pumps the channel; its deadline sweep (or
    // channel death) bounds this wait.
    while (!wait->done.load(std::memory_order_acquire)) asyncx::pause_job();
  } else {
    while (!wait->done.load(std::memory_order_acquire)) {
      remote_->pump();
      std::this_thread::yield();
    }
  }
  inflight_[static_cast<int>(cls)].fetch_sub(1, std::memory_order_release);

  switch (wait->status) {
    case remote::RemoteStatus::kOk: {
      Result<T> decoded = spec.decode(wait->payload);
      if (!decoded.is_ok()) {
        // The server said ok but the payload doesn't parse: a channel-level
        // fault, not an op-level one. Fall down the ladder.
        ++stats_.remote_failures;
        obs_counters().remote_failure.inc();
        remote_on_failure();
        return false;
      }
      ++stats_.remote_completed;
      obs_counters().remote_completed.inc();
      remote_on_success();
      *out = std::move(decoded);
      return true;
    }
    case remote::RemoteStatus::kComputeError:
      // Deterministic input failure — the tier worked; surface the same
      // Status a local compute would have produced. Terminal for the op.
      ++stats_.remote_completed;
      obs_counters().remote_completed.inc();
      remote_on_success();
      *out = remote::decode_error_body(wait->payload);
      return true;
    case remote::RemoteStatus::kDeadlineExpired:
      ++stats_.remote_expiries;
      obs_counters().remote_expiry.inc();
      remote_on_failure();
      return false;
    default:  // kBudgetExhausted, kBadRequest, kChannelDown
      ++stats_.remote_failures;
      obs_counters().remote_failure.inc();
      remote_on_failure();
      return false;
  }
}

bool QatEngineProvider::try_remote_seal_batch(
    qat::OpClass cls, const std::vector<RemoteSpec<Bytes>>& specs,
    const std::vector<std::function<Result<Bytes>()>>& computes,
    const std::vector<Bytes*>& outs, Status* result) {
  if (!remote_tier_available()) return false;
  const size_t n = specs.size();

  asyncx::AsyncJob* job = asyncx::get_current_job();
  const bool async = config_.offload_mode == OffloadMode::kAsync && job;
  asyncx::WaitCtx* wctx = async ? job->wait_ctx() : nullptr;

  const uint64_t deadline_ns =
      config_.remote_op_deadline_us == 0
          ? 0
          : steady_now_ns() + config_.remote_op_deadline_us * 1'000ULL;

  // N submits, ONE flush: the whole batch leaves as a single frame — the
  // remote mirror of the submit_batch() dispatch discipline.
  std::vector<std::shared_ptr<RemoteWait>> waits;
  waits.reserve(n);
  size_t submitted = 0;
  for (size_t i = 0; i < n; ++i) {
    auto wait = std::make_shared<RemoteWait>();
    wait->wctx = wctx;
    ++stats_.remote_ops;
    obs_counters().remote_op.inc();
    inflight_[static_cast<int>(cls)].fetch_add(1, std::memory_order_release);
    if (!remote_->submit(specs[i].op, specs[i].encode(), deadline_ns,
                         [wait](remote::RemoteStatus st, BytesView payload) {
                           wait->status = st;
                           wait->payload.assign(payload.begin(),
                                                payload.end());
                           wait->done.store(true, std::memory_order_release);
                           if (wait->wctx) wait->wctx->notify();
                         })) {
      // Channel died mid-batch: the dead submit never completes; mark it
      // settled here (earlier submits got kChannelDown completions already)
      // and let the settle loop below do the failure accounting.
      inflight_[static_cast<int>(cls)].fetch_sub(1,
                                                 std::memory_order_release);
      wait->status = remote::RemoteStatus::kChannelDown;
      wait->done.store(true, std::memory_order_release);
    } else {
      ++submitted;
    }
    waits.push_back(std::move(wait));
  }
  if (submitted > 0) {
    remote_->flush();
    ++stats_.remote_batches;
    obs_counters().remote_batch.inc();
  }

  auto all_done = [&] {
    for (const auto& w : waits)
      if (!w->done.load(std::memory_order_acquire)) return false;
    return true;
  };
  if (async) {
    while (!all_done()) asyncx::pause_job();
  } else {
    while (!all_done()) {
      remote_->pump();
      std::this_thread::yield();
    }
  }
  inflight_[static_cast<int>(cls)].fetch_sub(submitted,
                                             std::memory_order_release);

  // Settle per record in caller order; remote-failed records fall back to
  // the inline compute individually (the batch doesn't degrade as a unit).
  for (size_t i = 0; i < n; ++i) {
    RemoteWait& w = *waits[i];
    if (w.status == remote::RemoteStatus::kOk) {
      ++stats_.remote_completed;
      obs_counters().remote_completed.inc();
      remote_on_success();
      record_bytes_copied().add(w.payload.size());
      append(*outs[i], w.payload);
      continue;
    }
    if (w.status == remote::RemoteStatus::kComputeError) {
      ++stats_.remote_completed;
      obs_counters().remote_completed.inc();
      remote_on_success();
      *result = remote::decode_error_body(w.payload);
      return true;  // terminal: a local compute would have failed the same
    }
    if (w.status == remote::RemoteStatus::kDeadlineExpired) {
      ++stats_.remote_expiries;
      obs_counters().remote_expiry.inc();
      remote_on_failure();
    } else {  // kChannelDown / kBudgetExhausted / kBadRequest
      ++stats_.remote_failures;
      obs_counters().remote_failure.inc();
      remote_on_failure();
    }
    ++stats_.sw_fallbacks;
    obs_counters().sw_fallback.inc();
    Result<Bytes> sealed = computes[i]();
    if (!sealed.is_ok()) {
      *result = sealed.status();
      return true;
    }
    record_bytes_copied().add(sealed.value().size());
    append(*outs[i], sealed.value());
  }
  *result = Status::ok();
  return true;
}

// ----------------------------------------------------- device lanes ----

bool QatEngineProvider::lane_allowed(DeviceLane& lane) {
  // The legacy single-device shape has no topology and no failover target:
  // the per-class breakers already own degradation, so the lane is always
  // allowed and the submit path is byte-for-byte the pre-topology one.
  if (lanes_.size() == 1 && !topology_) return true;
  if (topology_ && !topology_->online(lane.device_id)) return false;
  // Open and half-open lanes are excluded here; re-binding goes through the
  // explicit probe phase in choose_lane so one op owns the probe.
  return lane.breaker.state.load(std::memory_order_acquire) == kClosed;
}

QatEngineProvider::DeviceLane* QatEngineProvider::try_probe_lane(
    DeviceLane& lane) {
  if (topology_ && !topology_->online(lane.device_id)) return nullptr;
  if (lane.breaker.state.load(std::memory_order_acquire) != kOpen)
    return nullptr;
  // A topology generation bump (re_add) re-probes immediately; otherwise
  // the cooldown must have elapsed.
  const uint64_t gen = topology_ ? topology_->generation() : 0;
  const bool gen_moved =
      topology_ && gen != lane.seen_generation.load(std::memory_order_acquire);
  if (!gen_moved &&
      steady_now_ns() <
          lane.breaker.open_until_ns.load(std::memory_order_acquire))
    return nullptr;
  uint8_t expected = kOpen;
  if (lane.breaker.state.compare_exchange_strong(expected, kHalfOpen,
                                                 std::memory_order_acq_rel)) {
    lane.seen_generation.store(gen, std::memory_order_release);
    return &lane;
  }
  return nullptr;
}

size_t QatEngineProvider::lane_depth(const DeviceLane& lane) const {
  // Device-wide depth when a topology is attached: spillover exists to shed
  // CONTENTION, and contention on a shared card comes mostly from other
  // workers' instances — a lane-local count can't see it. Standalone
  // providers fall back to their own share of the queue.
  if (topology_) return topology_->queue_depth(lane.device_id);
  size_t depth = 0;
  for (qat::CryptoInstance* inst : lane.instances) depth += inst->inflight();
  return depth;
}

QatEngineProvider::DeviceLane* QatEngineProvider::choose_lane(
    int exclude_device) {
  if (lanes_.size() == 1 && !topology_) return lanes_.front().get();

  // Phase 0: win a pending half-open probe — a tripped lane whose cooldown
  // elapsed, or whose device was re-added (topology generation moved) —
  // affine lane first. Probing AHEAD of healthy lanes is what rebinds a
  // recovered device promptly: if probes only ran when every lane was dark,
  // a worker with one surviving lane would never rediscover the other. The
  // cost is one committed op per cooldown against a still-dead device,
  // which the retry path migrates anyway.
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& lp : lanes_) {
      DeviceLane& lane = *lp;
      if (lane.device_id == exclude_device) continue;
      const bool is_preferred = lane.device_id == preferred_device_;
      if ((pass == 0) != is_preferred) continue;
      if (DeviceLane* probed = try_probe_lane(lane)) return probed;
    }
  }

  // Phase 1: closed lanes only, shallowest-depth with affinity preference.
  DeviceLane* preferred = nullptr;
  DeviceLane* best = nullptr;
  size_t best_depth = static_cast<size_t>(-1);
  for (auto& lp : lanes_) {
    DeviceLane& lane = *lp;
    if (lane.device_id == exclude_device) continue;
    if (!lane_allowed(lane)) continue;
    const size_t depth = lane_depth(lane);
    if (depth < best_depth) {
      best_depth = depth;
      best = &lane;
    }
    if (lane.device_id == preferred_device_) preferred = &lane;
  }
  if (preferred) {
    const size_t spill =
        topology_ ? topology_->spill_threshold() : static_cast<size_t>(64);
    if (preferred == best || lane_depth(*preferred) <= best_depth + spill)
      return preferred;
    // Affine device too deep: spill to the shallowest healthy lane.
    ++stats_.lane_spillovers;
    obs_counters().lane_spill.inc();
    return best;
  }
  if (best) {
    // The affine lane was down, tripped, or excluded — count the diversion
    // so load-shift during an outage is visible.
    ++stats_.lane_spillovers;
    obs_counters().lane_spill.inc();
    return best;
  }

  // Everything (except maybe the excluded device) is dark. A retry may
  // still go back to the device that just failed it rather than giving up.
  if (exclude_device >= 0) return choose_lane(-1);
  return nullptr;
}

qat::CryptoInstance* QatEngineProvider::lane_instance(DeviceLane& lane) {
  return lane.instances[lane.rr.fetch_add(1, std::memory_order_relaxed) %
                        lane.instances.size()];
}

void QatEngineProvider::lane_on_success(DeviceLane& lane) {
  if (lanes_.size() == 1 && !topology_) return;
  ClassBreaker& b = lane.breaker;
  if (b.consecutive_failures.load(std::memory_order_relaxed) != 0)
    b.consecutive_failures.store(0, std::memory_order_relaxed);
  if (b.state.load(std::memory_order_acquire) != kClosed) {
    b.state.store(kClosed, std::memory_order_release);
    ++stats_.lane_breaker_closes;
    obs_counters().lane_close.inc();
    QTLS_INFO << "qat lane for device " << lane.device_id
              << " rebound (re-probe succeeded)";
  }
}

void QatEngineProvider::lane_on_failure(DeviceLane& lane) {
  if (lanes_.size() == 1 && !topology_) return;
  ClassBreaker& b = lane.breaker;
  const int fails =
      b.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint8_t st = b.state.load(std::memory_order_acquire);
  const bool open_now =
      st == kHalfOpen || (st == kClosed && fails >= config_.breaker_threshold);
  if (!open_now) return;
  b.open_until_ns.store(
      steady_now_ns() + config_.breaker_cooldown_ms * 1'000'000ULL,
      std::memory_order_release);
  if (topology_)
    lane.seen_generation.store(topology_->generation(),
                               std::memory_order_release);
  b.state.store(kOpen, std::memory_order_release);
  ++stats_.lane_breaker_opens;
  obs_counters().lane_open.inc();
  QTLS_WARN << "qat lane for device " << lane.device_id << " tripped after "
            << fails << " consecutive device failures; shifting load";
}

bool QatEngineProvider::other_lane_available(int device_id) {
  for (auto& lp : lanes_) {
    if (lp->device_id == device_id) continue;
    if (lane_allowed(*lp)) return true;
    // An open lane that could be probed still counts: the class must not
    // degrade to software while another device can be brought back.
    if (lp->breaker.state.load(std::memory_order_acquire) != kClosed &&
        (!topology_ || topology_->online(lp->device_id)))
      return true;
  }
  return false;
}

std::string QatEngineProvider::lanes_json() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < lanes_.size(); ++i) {
    const DeviceLane& lane = *lanes_[i];
    const char* st = "closed";
    switch (static_cast<BreakerState>(
        lane.breaker.state.load(std::memory_order_acquire))) {
      case BreakerState::kClosed: st = "closed"; break;
      case BreakerState::kOpen: st = "open"; break;
      case BreakerState::kHalfOpen: st = "half_open"; break;
    }
    os << (i ? "," : "") << "{\"device\":" << lane.device_id
       << ",\"breaker\":\"" << st << "\",\"submitted\":"
       << lane.submitted.load(std::memory_order_relaxed)
       << ",\"instances\":" << lane.instances.size() << "}";
  }
  os << ']';
  return os.str();
}

qat::OpKind QatEngineProvider::ec_op_kind(CurveId curve) {
  switch (curve) {
    case CurveId::kP256: return qat::OpKind::kEcP256;
    case CurveId::kP384: return qat::OpKind::kEcP384;
    case CurveId::kB283:
    case CurveId::kK283: return qat::OpKind::kEcBinary283;
    case CurveId::kB409:
    case CurveId::kK409: return qat::OpKind::kEcBinary409;
  }
  return qat::OpKind::kEcP256;
}

template <typename T>
Result<T> QatEngineProvider::offload(qat::OpKind kind,
                                     std::function<Result<T>()> compute,
                                     const RemoteSpec<T>* rspec) {
  using State = TypedOpState<T>;

  const qat::OpClass cls = qat::op_class_of(kind);

  if (!offload_allowed(cls)) {
    // Breaker open: next rung of the ladder is the remote tier, then
    // software — QAT -> remote -> inline, never skipping a live tier.
    if (rspec) {
      Result<T> r = err(Code::kUnavailable, "remote tier unavailable");
      if (try_remote(cls, *rspec, &r)) return r;
    }
    // Degrade to software. The compute closures are self-contained, so
    // running one on the calling thread IS the SoftwareProvider path (same
    // primitives, no device round trip).
    ++stats_.sw_fallbacks;
    obs_counters().sw_fallback.inc();
    return compute();
  }

  asyncx::AsyncJob* job = asyncx::get_current_job();
  const bool async = config_.offload_mode == OffloadMode::kAsync && job;
  asyncx::WaitCtx* wctx = async ? job->wait_ctx() : nullptr;

  const int max_attempts = 1 + std::max(0, config_.max_retries);
  int exclude_device = -1;  // the device the previous attempt failed on
  int last_device = -1;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // Lane choice per attempt (DESIGN.md §12): the affine device unless it
    // is down/tripped/deep, and never the device that just failed this op
    // — a retry migrates to a surviving device when one exists.
    DeviceLane* lane = choose_lane(exclude_device);
    if (!lane) {
      // Every assigned device is offline or tripped. Degrade this op
      // without touching the per-class breaker: the lane probes own
      // recovery, and a class flip would outlive the outage. The remote
      // tier takes the op first when it is live.
      if (rspec) {
        Result<T> r = err(Code::kUnavailable, "remote tier unavailable");
        if (try_remote(cls, *rspec, &r)) return r;
      }
      if (!config_.sw_fallback_on_device_error)
        return err(Code::kUnavailable, "no qat device available");
      ++stats_.sw_fallbacks;
      obs_counters().sw_fallback.inc();
      return compute();
    }
    if (last_device >= 0 && lane->device_id != last_device) {
      ++stats_.device_migrations;
      obs_counters().migration.inc();
    }
    last_device = lane->device_id;

    // Fresh per-attempt state: an abandoned attempt's shared state may still
    // be referenced by a late device response, so it is never reused.
    auto state = std::make_shared<State>();
    state->wctx = wctx;
    state->cls = static_cast<int>(cls);

    // Counted before submission so the heuristic poller sees the request the
    // instant it exists (paper §4.3 counts at crypto-function invocation).
    inflight_[static_cast<int>(cls)].fetch_add(1, std::memory_order_release);

    auto build_request = [&] {
      qat::CryptoRequest req;
      req.request_id =
          next_request_id_.fetch_add(1, std::memory_order_relaxed);
      req.kind = kind;
      // Sampling decision + submit stamp; the device stamps the rest of the
      // pipeline as the request moves through it.
      obs::trace_begin(req.trace);
      state->req_id = req.request_id;
      req.compute = [state, compute] {
        state->result = compute();
        return state->result.is_ok();
      };
      req.on_response = [this, state](const qat::CryptoResponse& resp) {
        if (state->abandoned.load(std::memory_order_acquire))
          return;  // deadline already recovered this op; slot released there
        state->dev_status = resp.status;
        if (resp.trace.sampled) state->trace = resp.trace;
        inflight_[state->cls].fetch_sub(1, std::memory_order_release);
        state->done.store(true, std::memory_order_release);
        // Async event notification (§3.4): kernel-bypass callback if set on
        // the wait context, otherwise the notification FD.
        if (state->wctx) state->wctx->notify();
      };
      return req;
    };

    // Requests round-robin across the lane's instances (§2.3); submission
    // retains the §3.2 failure path: a full request ring pauses the job
    // (async) or backs off (sync) and retries.
    qat::CryptoInstance* target = lane_instance(*lane);
    while (!target->submit(build_request())) {
      ++stats_.submit_retries;
      obs_counters().submit_retry.inc();
      if (async) {
        // Notify immediately so the application reschedules this handler to
        // retry the submission.
        if (wctx) wctx->notify();
        asyncx::pause_job();
      } else {
        target->poll();
        std::this_thread::yield();
      }
    }
    lane->submitted.fetch_add(1, std::memory_order_relaxed);
    ++stats_.submitted;
    obs_counters().submitted.inc();

    const uint64_t deadline_ns =
        config_.op_deadline_us == 0
            ? 0
            : steady_now_ns() + config_.op_deadline_us * 1'000ULL;

    if (async) {
      if (deadline_ns != 0) {
        state->deadline_ns = deadline_ns;
        std::lock_guard<std::mutex> lk(pending_mu_);
        pending_.push_back(state);
      }
      // Pre-processing ends here: pause until the async event arrives. The
      // loop tolerates spurious resumes (e.g. a resume triggered by the
      // retry-notification racing an actual response). A deadline expiry
      // (sweep_deadlines) sets `abandoned` and notifies, ending the wait.
      while (!state->done.load(std::memory_order_acquire) &&
             !state->abandoned.load(std::memory_order_acquire))
        asyncx::pause_job();
    } else {
      ++stats_.sync_blocks;
      // Straight offload (QAT+S): burn the event loop until the response is
      // back — this is precisely Figure 3's blocking. With a deadline set,
      // the spin checks the clock itself (no registry involvement).
      while (!state->done.load(std::memory_order_acquire)) {
        if (config_.self_poll_when_blocking) {
          target->poll();
        } else {
          std::this_thread::yield();  // an external polling thread retrieves
        }
        if (deadline_ns != 0 && steady_now_ns() >= deadline_ns &&
            !state->done.load(std::memory_order_acquire)) {
          state->abandoned.store(true, std::memory_order_release);
          inflight_[state->cls].fetch_sub(1, std::memory_order_release);
          ++stats_.deadline_expiries;
          obs_counters().deadline_expiry.inc();
          break;
        }
      }
    }

    if (state->abandoned.load(std::memory_order_acquire)) {
      // Deadline expired (likely a dropped response). No resubmit: the op
      // may still complete device-side and a duplicate would double-apply.
      // The DEVICE that swallowed it is charged; the class breaker only
      // when no higher tier survives — a healthy lane or a live remote
      // channel must keep the class off software (ops migrate down the
      // ladder, the class doesn't degrade).
      lane_on_failure(*lane);
      if (!other_lane_available(lane->device_id) && !remote_tier_live())
        breaker_on_failure(cls);
      if (rspec) {
        Result<T> r = err(Code::kUnavailable, "remote tier unavailable");
        if (try_remote(cls, *rspec, &r)) return r;
      }
      if (config_.sw_fallback_on_device_error) {
        ++stats_.sw_fallbacks;
        obs_counters().sw_fallback.inc();
        return compute();
      }
      return err(Code::kUnavailable, "qat op deadline expired");
    }

    ++stats_.completed;  // one per retrieved response, on the calling thread
    obs_counters().completed.inc();
    if (state->trace.sampled) {
      // Post-processing resumes here: close the trace and fold the stage
      // deltas into the per-stage histograms.
      obs::stamp_now(state->trace, obs::Stage::kFiberResume);
      obs::record_pipeline(state->trace, state->req_id, state->cls,
                           /*sim=*/false);
    }

    if (!qat::is_device_failure(state->dev_status)) {
      // kSuccess, or kComputeError (a deterministic input failure — the
      // device worked; state->result carries the error to the caller).
      lane_on_success(*lane);
      breaker_on_success(cls);
      return std::move(state->result);
    }

    // Transient device failure (CPA_STATUS_FAIL / reset-in-flight). Charge
    // the lane and steer the retry off this device.
    lane_on_failure(*lane);
    exclude_device = lane->device_id;
    ++stats_.device_errors;
    obs_counters().device_error.inc();
    if (attempt < max_attempts) {
      ++stats_.op_retries;
      obs_counters().retry.inc();
      if (!async) {
        // Capped exponential backoff on the blocking path. The fiber path
        // resubmits immediately instead — it must not block the worker
        // thread, and the resubmission round-robins to another instance.
        const uint64_t backoff_us =
            std::min(config_.retry_backoff_cap_us,
                     config_.retry_backoff_base_us << (attempt - 1));
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
    }
  }

  // Retries exhausted: terminal device failure for this op. The class
  // breaker is only charged when no surviving device AND no live remote
  // tier could take the class — otherwise the per-device lanes and the
  // remote breaker own degradation and the class stays on offload.
  if (!other_lane_available(last_device) && !remote_tier_live())
    breaker_on_failure(cls);
  if (rspec) {
    Result<T> r = err(Code::kUnavailable, "remote tier unavailable");
    if (try_remote(cls, *rspec, &r)) return r;
  }
  if (config_.sw_fallback_on_device_error) {
    ++stats_.sw_fallbacks;
    obs_counters().sw_fallback.inc();
    return compute();
  }
  return err(Code::kUnavailable, "qat device error; retries exhausted");
}

namespace {
// Remote payloads for Bytes-valued ops ARE the result; no parse step.
Result<Bytes> decode_bytes_payload(BytesView b) {
  return Bytes(b.begin(), b.end());
}
}  // namespace

Result<Bytes> QatEngineProvider::rsa_sign(const RsaPrivateKey& key,
                                          BytesView digest) {
  if (!config_.offload_rsa) return fallback_.rsa_sign(key, digest);
  Bytes digest_copy(digest.begin(), digest.end());
  const RsaPrivateKey* key_ptr = &key;  // keys outlive connections
  RemoteSpec<Bytes> rspec;
  rspec.op = remote::RemoteOp::kRsaSign;
  rspec.encode = [key_ptr, digest_copy] {
    return remote::encode_rsa_op(*key_ptr, digest_copy);
  };
  rspec.decode = decode_bytes_payload;
  return offload<Bytes>(
      qat::OpKind::kRsa2048Priv,
      [key_ptr, digest_copy]() -> Result<Bytes> {
        Bytes sig = rsa_sign_pkcs1(*key_ptr, digest_copy);
        if (sig.empty()) return err(Code::kInvalidArgument, "bad digest");
        return sig;
      },
      &rspec);
}

Result<Bytes> QatEngineProvider::rsa_decrypt(const RsaPrivateKey& key,
                                             BytesView ciphertext) {
  if (!config_.offload_rsa) return fallback_.rsa_decrypt(key, ciphertext);
  Bytes ct(ciphertext.begin(), ciphertext.end());
  const RsaPrivateKey* key_ptr = &key;
  RemoteSpec<Bytes> rspec;
  rspec.op = remote::RemoteOp::kRsaDecrypt;
  rspec.encode = [key_ptr, ct] { return remote::encode_rsa_op(*key_ptr, ct); };
  rspec.decode = decode_bytes_payload;
  return offload<Bytes>(
      qat::OpKind::kRsa2048Priv,
      [key_ptr, ct]() -> Result<Bytes> {
        return rsa_decrypt_pkcs1(*key_ptr, ct);
      },
      &rspec);
}

Result<KeyShare> QatEngineProvider::ecdhe_keygen(CurveId curve) {
  if (!config_.offload_ec) return fallback_.ecdhe_keygen(curve);
  // Engine threads need private randomness: derive a one-shot DRBG.
  const uint64_t nonce =
      engine_drbg_nonce_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t seed = config_.drbg_seed ^ (nonce * 0x9e3779b97f4a7c15ULL);
  RemoteSpec<KeyShare> rspec;
  rspec.op = remote::RemoteOp::kEcdheKeygen;
  rspec.encode = [curve, seed] {
    return remote::encode_ecdhe_keygen(curve, seed);
  };
  rspec.decode = [](BytesView body) -> Result<KeyShare> {
    QTLS_ASSIGN_OR_RETURN(remote::WireKeyShare wire,
                          remote::decode_keyshare_body(body));
    KeyShare share;
    share.curve = static_cast<CurveId>(wire.curve);
    share.priv = std::move(wire.priv);
    share.pub_point = std::move(wire.pub_point);
    return share;
  };
  return offload<KeyShare>(
      ec_op_kind(curve),
      [curve, seed]() -> Result<KeyShare> {
        Bytes sb;
        append_u64(sb, seed);
        HmacDrbg rng(HashAlg::kSha256, sb);
        return ecdhe_keygen_impl(curve, rng);
      },
      &rspec);
}

Result<Bytes> QatEngineProvider::ecdhe_derive(const KeyShare& mine,
                                              BytesView peer_point) {
  if (!config_.offload_ec) return fallback_.ecdhe_derive(mine, peer_point);
  KeyShare share = mine;
  Bytes peer(peer_point.begin(), peer_point.end());
  RemoteSpec<Bytes> rspec;
  rspec.op = remote::RemoteOp::kEcdheDerive;
  rspec.encode = [share, peer] {
    return remote::encode_ecdhe_derive(share.curve, share.priv,
                                       share.pub_point, peer);
  };
  rspec.decode = decode_bytes_payload;
  return offload<Bytes>(
      ec_op_kind(mine.curve),
      [share, peer]() -> Result<Bytes> {
        return ecdhe_derive_impl(share, peer);
      },
      &rspec);
}

Result<Bytes> QatEngineProvider::ecdsa_sign(CurveId curve, const Bignum& priv,
                                            BytesView digest) {
  if (!config_.offload_ec) return fallback_.ecdsa_sign(curve, priv, digest);
  const EcCurve* c = prime_curve(curve);
  if (!c)
    return err(Code::kUnimplemented, "ECDSA restricted to prime curves");
  const uint64_t nonce =
      engine_drbg_nonce_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t seed = config_.drbg_seed ^ (nonce * 0xc2b2ae3d27d4eb4fULL);
  Bignum priv_copy = priv;
  Bytes digest_copy(digest.begin(), digest.end());
  RemoteSpec<Bytes> rspec;
  rspec.op = remote::RemoteOp::kEcdsaSign;
  rspec.encode = [curve, priv_copy, digest_copy, seed] {
    return remote::encode_ecdsa_sign(curve, priv_copy.to_bytes_be(),
                                     digest_copy, seed);
  };
  rspec.decode = decode_bytes_payload;
  return offload<Bytes>(
      ec_op_kind(curve),
      [c, priv_copy, digest_copy, seed]() -> Result<Bytes> {
        Bytes sb;
        append_u64(sb, seed);
        HmacDrbg rng(HashAlg::kSha256, sb);
        return qtls::ecdsa_sign(*c, priv_copy, digest_copy, rng).encode();
      },
      &rspec);
}

Result<Bytes> QatEngineProvider::prf_tls12(HashAlg alg, BytesView secret,
                                           const std::string& label,
                                           BytesView seed, size_t out_len) {
  if (!config_.offload_prf)
    return fallback_.prf_tls12(alg, secret, label, seed, out_len);
  Bytes secret_copy(secret.begin(), secret.end());
  Bytes seed_copy(seed.begin(), seed.end());
  RemoteSpec<Bytes> rspec;
  rspec.op = remote::RemoteOp::kPrfTls12;
  rspec.encode = [alg, secret_copy, label, seed_copy, out_len] {
    return remote::encode_prf_tls12(alg, secret_copy, label, seed_copy,
                                    static_cast<uint32_t>(out_len));
  };
  rspec.decode = decode_bytes_payload;
  return offload<Bytes>(
      qat::OpKind::kPrfTls12,
      [alg, secret_copy, label, seed_copy, out_len]() -> Result<Bytes> {
        return tls12_prf(alg, secret_copy, label, seed_copy, out_len);
      },
      &rspec);
}

Result<Bytes> QatEngineProvider::cipher_seal(const CbcHmacKeys& keys,
                                             uint64_t seq, BytesView header,
                                             BytesView iv, BytesView fragment) {
  if (!config_.offload_cipher)
    return fallback_.cipher_seal(keys, seq, header, iv, fragment);
  CbcHmacKeys keys_copy = keys;
  Bytes header_copy(header.begin(), header.end());
  Bytes iv_copy(iv.begin(), iv.end());
  Bytes frag_copy(fragment.begin(), fragment.end());
  RemoteSpec<Bytes> rspec;
  rspec.op = remote::RemoteOp::kCipherSeal;
  rspec.encode = [keys_copy, seq, header_copy, iv_copy, frag_copy] {
    return remote::encode_cipher_seal(keys_copy, seq, header_copy, iv_copy,
                                      frag_copy);
  };
  rspec.decode = decode_bytes_payload;
  return offload<Bytes>(
      qat::OpKind::kCipher16k,
      [keys_copy, seq, header_copy, iv_copy, frag_copy]() -> Result<Bytes> {
        return cbc_hmac_seal(keys_copy, seq, header_copy, iv_copy, frag_copy);
      },
      &rspec);
}

Result<Bytes> QatEngineProvider::cipher_open(const CbcHmacKeys& keys,
                                             uint64_t seq,
                                             BytesView header_without_len,
                                             BytesView iv,
                                             BytesView ciphertext) {
  if (!config_.offload_cipher)
    return fallback_.cipher_open(keys, seq, header_without_len, iv, ciphertext);
  CbcHmacKeys keys_copy = keys;
  Bytes header_copy(header_without_len.begin(), header_without_len.end());
  Bytes iv_copy(iv.begin(), iv.end());
  Bytes ct_copy(ciphertext.begin(), ciphertext.end());
  RemoteSpec<Bytes> rspec;
  rspec.op = remote::RemoteOp::kCipherOpen;
  rspec.encode = [keys_copy, seq, header_copy, iv_copy, ct_copy] {
    return remote::encode_cipher_open(keys_copy, seq, header_copy, iv_copy,
                                      ct_copy);
  };
  rspec.decode = decode_bytes_payload;
  return offload<Bytes>(
      qat::OpKind::kCipher16k,
      [keys_copy, seq, header_copy, iv_copy, ct_copy]() -> Result<Bytes> {
        return cbc_hmac_open(keys_copy, seq, header_copy, iv_copy, ct_copy);
      },
      &rspec);
}

Result<Bytes> QatEngineProvider::aead_seal(BytesView key, BytesView nonce,
                                           BytesView aad,
                                           BytesView plaintext) {
  if (!config_.offload_cipher)
    return fallback_.aead_seal(key, nonce, aad, plaintext);
  Bytes k(key.begin(), key.end());
  Bytes n(nonce.begin(), nonce.end());
  Bytes a(aad.begin(), aad.end());
  Bytes pt(plaintext.begin(), plaintext.end());
  RemoteSpec<Bytes> rspec;
  rspec.op = remote::RemoteOp::kAeadSeal;
  rspec.encode = [k, n, a, pt] { return remote::encode_aead_op(k, n, a, pt); };
  rspec.decode = decode_bytes_payload;
  return offload<Bytes>(
      qat::OpKind::kCipher16k,
      [k, n, a, pt]() -> Result<Bytes> { return gcm_seal(k, n, a, pt); },
      &rspec);
}

Result<Bytes> QatEngineProvider::aead_open(BytesView key, BytesView nonce,
                                           BytesView aad,
                                           BytesView ciphertext) {
  if (!config_.offload_cipher)
    return fallback_.aead_open(key, nonce, aad, ciphertext);
  Bytes k(key.begin(), key.end());
  Bytes n(nonce.begin(), nonce.end());
  Bytes a(aad.begin(), aad.end());
  Bytes ct(ciphertext.begin(), ciphertext.end());
  RemoteSpec<Bytes> rspec;
  rspec.op = remote::RemoteOp::kAeadOpen;
  rspec.encode = [k, n, a, ct] { return remote::encode_aead_op(k, n, a, ct); };
  rspec.decode = decode_bytes_payload;
  return offload<Bytes>(
      qat::OpKind::kCipher16k,
      [k, n, a, ct]() -> Result<Bytes> { return gcm_open(k, n, a, ct); },
      &rspec);
}

Status QatEngineProvider::run_seal_batch(
    const std::vector<std::function<Result<Bytes>()>>& computes,
    const std::vector<Bytes*>& outs,
    const std::vector<RemoteSpec<Bytes>>* rspecs) {
  using State = TypedOpState<Bytes>;
  const qat::OpClass cls = qat::op_class_of(qat::OpKind::kCipher16k);
  const size_t n = computes.size();

  if (!offload_allowed(cls)) {
    // Breaker open: the remote tier takes the whole batch as one frame
    // when it is live; otherwise the batch degrades to software on the
    // calling thread (the closures are self-contained).
    if (rspecs) {
      Status remote_result = Status::ok();
      if (try_remote_seal_batch(cls, *rspecs, computes, outs,
                                &remote_result))
        return remote_result;
    }
    for (size_t i = 0; i < n; ++i) {
      ++stats_.sw_fallbacks;
      obs_counters().sw_fallback.inc();
      QTLS_ASSIGN_OR_RETURN(Bytes sealed, computes[i]());
      record_bytes_copied().add(sealed.size());
      append(*outs[i], sealed);
    }
    return Status::ok();
  }

  // The whole batch rides one lane — a single submit_batch() dispatch is the
  // point of batching, so per-record lane choice would defeat it. Record
  // retries migrate individually through the single-op runner below.
  DeviceLane* lane = choose_lane(-1);
  if (!lane) {
    // Every device offline or tripped: the remote tier takes the batch
    // first; otherwise degrade without touching the per-class breaker
    // (lane probes own recovery).
    if (rspecs) {
      Status remote_result = Status::ok();
      if (try_remote_seal_batch(cls, *rspecs, computes, outs,
                                &remote_result))
        return remote_result;
    }
    if (!config_.sw_fallback_on_device_error)
      return err(Code::kUnavailable, "no qat device available");
    for (size_t i = 0; i < n; ++i) {
      ++stats_.sw_fallbacks;
      obs_counters().sw_fallback.inc();
      QTLS_ASSIGN_OR_RETURN(Bytes sealed, computes[i]());
      record_bytes_copied().add(sealed.size());
      append(*outs[i], sealed);
    }
    return Status::ok();
  }

  asyncx::AsyncJob* job = asyncx::get_current_job();
  const bool async = config_.offload_mode == OffloadMode::kAsync && job;
  asyncx::WaitCtx* wctx = async ? job->wait_ctx() : nullptr;

  // One shared state per record; every response callback decrements the
  // inflight slot and notifies the (single) waiting fiber.
  std::vector<std::shared_ptr<State>> states;
  states.reserve(n);
  std::vector<qat::CryptoRequest> reqs;
  reqs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto state = std::make_shared<State>();
    state->wctx = wctx;
    state->cls = static_cast<int>(cls);
    inflight_[static_cast<int>(cls)].fetch_add(1, std::memory_order_release);

    qat::CryptoRequest req;
    req.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    req.kind = qat::OpKind::kCipher16k;
    obs::trace_begin(req.trace);
    state->req_id = req.request_id;
    const auto& compute = computes[i];
    req.compute = [state, compute] {
      state->result = compute();
      return state->result.is_ok();
    };
    req.on_response = [this, state](const qat::CryptoResponse& resp) {
      if (state->abandoned.load(std::memory_order_acquire)) return;
      state->dev_status = resp.status;
      if (resp.trace.sampled) state->trace = resp.trace;
      inflight_[state->cls].fetch_sub(1, std::memory_order_release);
      state->done.store(true, std::memory_order_release);
      if (state->wctx) state->wctx->notify();
    };
    states.push_back(std::move(state));
    reqs.push_back(std::move(req));
  }

  // The whole span goes to one instance as a single submit_batch() dispatch
  // (one engine wakeup for N records); a full request ring accepts a prefix
  // and the remainder retries after the loop turns (§3.2).
  qat::CryptoInstance* target = lane_instance(*lane);
  size_t accepted = 0;
  while (accepted < n) {
    accepted +=
        target->submit_batch(std::span<qat::CryptoRequest>(reqs).subspan(
            accepted));
    if (accepted < n) {
      ++stats_.submit_retries;
      obs_counters().submit_retry.inc();
      if (async) {
        if (wctx) wctx->notify();
        asyncx::pause_job();
      } else {
        target->poll();
        std::this_thread::yield();
      }
    }
  }
  lane->submitted.fetch_add(n, std::memory_order_relaxed);
  stats_.submitted += n;
  obs_counters().submitted.add(n);
  ++stats_.seal_batches;
  stats_.seal_batch_ops += n;
  if (n > stats_.max_seal_batch) stats_.max_seal_batch = n;
  obs_counters().seal_batch.inc();
  obs_counters().seal_batch_op.add(n);

  const uint64_t deadline_ns =
      config_.op_deadline_us == 0
          ? 0
          : steady_now_ns() + config_.op_deadline_us * 1'000ULL;

  auto settled = [](const State& s) {
    return s.done.load(std::memory_order_acquire) ||
           s.abandoned.load(std::memory_order_acquire);
  };
  auto all_settled = [&] {
    for (const auto& s : states)
      if (!settled(*s)) return false;
    return true;
  };

  if (async) {
    if (deadline_ns != 0) {
      std::lock_guard<std::mutex> lk(pending_mu_);
      for (auto& s : states) {
        s->deadline_ns = deadline_ns;
        pending_.push_back(s);
      }
    }
    // Every response (and any deadline expiry in sweep_deadlines) notifies
    // this fiber; the loop tolerates spurious resumes.
    while (!all_settled()) asyncx::pause_job();
  } else {
    ++stats_.sync_blocks;
    while (!all_settled()) {
      if (config_.self_poll_when_blocking) {
        target->poll();
      } else {
        std::this_thread::yield();
      }
      if (deadline_ns != 0 && steady_now_ns() >= deadline_ns) {
        for (auto& s : states) {
          if (settled(*s)) continue;
          s->abandoned.store(true, std::memory_order_release);
          inflight_[s->cls].fetch_sub(1, std::memory_order_release);
          ++stats_.deadline_expiries;
          obs_counters().deadline_expiry.inc();
        }
      }
    }
  }

  // Settle per record, preserving wire order (outs[i] append order is the
  // caller's record order regardless of device completion order).
  for (size_t i = 0; i < n; ++i) {
    State& s = *states[i];
    if (s.abandoned.load(std::memory_order_acquire)) {
      // Deadline expired: no resubmit (a late response may still land
      // device-side), mirror the single-op path — charge the lane, and the
      // class only when no surviving device exists.
      lane_on_failure(*lane);
      if (!other_lane_available(lane->device_id)) breaker_on_failure(cls);
      if (!config_.sw_fallback_on_device_error)
        return err(Code::kUnavailable, "qat op deadline expired");
      ++stats_.sw_fallbacks;
      obs_counters().sw_fallback.inc();
      QTLS_ASSIGN_OR_RETURN(Bytes sealed, computes[i]());
      record_bytes_copied().add(sealed.size());
      append(*outs[i], sealed);
      continue;
    }

    ++stats_.completed;
    obs_counters().completed.inc();
    if (s.trace.sampled) {
      obs::stamp_now(s.trace, obs::Stage::kFiberResume);
      obs::record_pipeline(s.trace, s.req_id, s.cls, /*sim=*/false);
    }

    if (!qat::is_device_failure(s.dev_status)) {
      lane_on_success(*lane);
      breaker_on_success(cls);
      QTLS_ASSIGN_OR_RETURN(Bytes sealed, std::move(s.result));
      record_bytes_copied().add(sealed.size());
      append(*outs[i], sealed);
      continue;
    }

    // Transient device failure on this record: charge the lane, then retry
    // through the single-op runner, which owns migration/backoff/fallback.
    lane_on_failure(*lane);
    ++stats_.device_errors;
    obs_counters().device_error.inc();
    ++stats_.op_retries;
    obs_counters().retry.inc();
    QTLS_ASSIGN_OR_RETURN(
        Bytes sealed, offload<Bytes>(qat::OpKind::kCipher16k, computes[i]));
    record_bytes_copied().add(sealed.size());
    append(*outs[i], sealed);
  }
  return Status::ok();
}

Status QatEngineProvider::cipher_seal_batch(const CbcHmacKeys& keys,
                                            std::span<CipherSealJob> jobs) {
  if (jobs.empty()) return Status::ok();
  if (!config_.offload_cipher) return fallback_.cipher_seal_batch(keys, jobs);
  if (jobs.size() == 1) {
    CipherSealJob& job = jobs.front();
    QTLS_ASSIGN_OR_RETURN(
        Bytes sealed,
        cipher_seal(keys, job.seq, job.header, job.iv, job.fragment));
    record_bytes_copied().add(sealed.size());
    append(*job.out, sealed);
    return Status::ok();
  }

  struct In {
    uint64_t seq;
    Bytes header, iv, fragment;
  };
  auto keys_copy = std::make_shared<CbcHmacKeys>(keys);
  std::vector<std::function<Result<Bytes>()>> computes;
  std::vector<Bytes*> outs;
  std::vector<RemoteSpec<Bytes>> rspecs;
  computes.reserve(jobs.size());
  outs.reserve(jobs.size());
  rspecs.reserve(jobs.size());
  for (CipherSealJob& job : jobs) {
    auto in = std::make_shared<In>(
        In{job.seq, Bytes(job.header.begin(), job.header.end()),
           Bytes(job.iv.begin(), job.iv.end()),
           Bytes(job.fragment.begin(), job.fragment.end())});
    computes.push_back([keys_copy, in]() -> Result<Bytes> {
      return cbc_hmac_seal(*keys_copy, in->seq, in->header, in->iv,
                           in->fragment);
    });
    RemoteSpec<Bytes> rspec;
    rspec.op = remote::RemoteOp::kCipherSeal;
    rspec.encode = [keys_copy, in] {
      return remote::encode_cipher_seal(*keys_copy, in->seq, in->header,
                                        in->iv, in->fragment);
    };
    rspec.decode = decode_bytes_payload;
    rspecs.push_back(std::move(rspec));
    outs.push_back(job.out);
  }
  return run_seal_batch(computes, outs, &rspecs);
}

Status QatEngineProvider::aead_seal_batch(BytesView key,
                                          std::span<AeadSealJob> jobs) {
  if (jobs.empty()) return Status::ok();
  if (!config_.offload_cipher) return fallback_.aead_seal_batch(key, jobs);
  if (jobs.size() == 1) {
    AeadSealJob& job = jobs.front();
    QTLS_ASSIGN_OR_RETURN(Bytes sealed,
                          aead_seal(key, job.nonce, job.aad, job.plaintext));
    record_bytes_copied().add(sealed.size());
    append(*job.out, sealed);
    return Status::ok();
  }

  struct In {
    Bytes nonce, aad, plaintext;
  };
  auto key_copy = std::make_shared<Bytes>(key.begin(), key.end());
  std::vector<std::function<Result<Bytes>()>> computes;
  std::vector<Bytes*> outs;
  std::vector<RemoteSpec<Bytes>> rspecs;
  computes.reserve(jobs.size());
  outs.reserve(jobs.size());
  rspecs.reserve(jobs.size());
  for (AeadSealJob& job : jobs) {
    auto in = std::make_shared<In>(
        In{Bytes(job.nonce.begin(), job.nonce.end()),
           Bytes(job.aad.begin(), job.aad.end()),
           Bytes(job.plaintext.begin(), job.plaintext.end())});
    computes.push_back([key_copy, in]() -> Result<Bytes> {
      return gcm_seal(*key_copy, in->nonce, in->aad, in->plaintext);
    });
    RemoteSpec<Bytes> rspec;
    rspec.op = remote::RemoteOp::kAeadSeal;
    rspec.encode = [key_copy, in] {
      return remote::encode_aead_op(*key_copy, in->nonce, in->aad,
                                    in->plaintext);
    };
    rspec.decode = decode_bytes_payload;
    rspecs.push_back(std::move(rspec));
    outs.push_back(job.out);
  }
  return run_seal_batch(computes, outs, &rspecs);
}

}  // namespace qtls::engine
