#include "engine/provider.h"

#include "crypto/gcm.h"
#include "obs/metrics.h"

namespace qtls::engine {

namespace {
// TX data-plane copy meter — same counter names interned by tls/record.cc,
// so every staging copy in the path lands in one place (DESIGN.md §11).
obs::Counter& record_bytes_copied() {
  static obs::Counter c =
      obs::MetricsRegistry::global().counter("record.bytes_copied");
  return c;
}
}  // namespace

Status CryptoProvider::cipher_seal_batch(const CbcHmacKeys& keys,
                                         std::span<CipherSealJob> jobs) {
  for (CipherSealJob& job : jobs) {
    QTLS_ASSIGN_OR_RETURN(
        Bytes sealed,
        cipher_seal(keys, job.seq, job.header, job.iv, job.fragment));
    record_bytes_copied().add(sealed.size());
    append(*job.out, sealed);
  }
  return Status::ok();
}

Status CryptoProvider::aead_seal_batch(BytesView key,
                                       std::span<AeadSealJob> jobs) {
  for (AeadSealJob& job : jobs) {
    QTLS_ASSIGN_OR_RETURN(Bytes sealed,
                          aead_seal(key, job.nonce, job.aad, job.plaintext));
    record_bytes_copied().add(sealed.size());
    append(*job.out, sealed);
  }
  return Status::ok();
}

const EcCurve* prime_curve(CurveId id) {
  switch (id) {
    case CurveId::kP256: return &curve_p256();
    case CurveId::kP384: return &curve_p384();
    default: return nullptr;
  }
}

const Ec2mCurve* binary_curve(CurveId id) {
  switch (id) {
    case CurveId::kB283: return &curve_b283();
    case CurveId::kB409: return &curve_b409();
    case CurveId::kK283: return &curve_k283();
    case CurveId::kK409: return &curve_k409();
    default: return nullptr;
  }
}

Result<KeyShare> ecdhe_keygen_impl(CurveId curve, HmacDrbg& rng) {
  if (const EcCurve* c = prime_curve(curve)) {
    const EcKeyPair pair = ec_generate_key(*c, rng);
    KeyShare share;
    share.curve = curve;
    share.priv = pair.priv.to_bytes_be(c->order().byte_length());
    share.pub_point = c->encode_point(pair.pub);
    return share;
  }
  if (const Ec2mCurve* c = binary_curve(curve)) {
    const Ec2mKeyPair pair = ec2m_generate_key(*c, rng);
    KeyShare share;
    share.curve = curve;
    share.priv = pair.priv;
    share.pub_point = c->encode_point(pair.pub);
    return share;
  }
  return err(Code::kInvalidArgument, "unknown curve");
}

Result<Bytes> ecdhe_derive_impl(const KeyShare& mine, BytesView peer_point) {
  if (const EcCurve* c = prime_curve(mine.curve)) {
    QTLS_ASSIGN_OR_RETURN(EcPoint peer, c->decode_point(peer_point));
    return ecdh_shared_secret(*c, Bignum::from_bytes_be(mine.priv), peer);
  }
  if (const Ec2mCurve* c = binary_curve(mine.curve)) {
    QTLS_ASSIGN_OR_RETURN(Ec2mPoint peer, c->decode_point(peer_point));
    return ec2m_shared_secret(*c, mine.priv, peer);
  }
  return err(Code::kInvalidArgument, "unknown curve");
}

SoftwareProvider::SoftwareProvider(uint64_t drbg_seed)
    : drbg_(HashAlg::kSha256, [&] {
        Bytes seed;
        append_u64(seed, drbg_seed);
        append(seed, to_bytes("software-provider"));
        return seed;
      }()) {}

Result<Bytes> SoftwareProvider::rsa_sign(const RsaPrivateKey& key,
                                         BytesView digest) {
  Bytes sig = rsa_sign_pkcs1(key, digest);
  if (sig.empty()) return err(Code::kInvalidArgument, "digest too long");
  return sig;
}

Result<Bytes> SoftwareProvider::rsa_decrypt(const RsaPrivateKey& key,
                                            BytesView ciphertext) {
  return rsa_decrypt_pkcs1(key, ciphertext);
}

Result<KeyShare> SoftwareProvider::ecdhe_keygen(CurveId curve) {
  return ecdhe_keygen_impl(curve, drbg_);
}

Result<Bytes> SoftwareProvider::ecdhe_derive(const KeyShare& mine,
                                             BytesView peer_point) {
  return ecdhe_derive_impl(mine, peer_point);
}

Result<Bytes> SoftwareProvider::ecdsa_sign(CurveId curve, const Bignum& priv,
                                           BytesView digest) {
  const EcCurve* c = prime_curve(curve);
  if (!c)
    return err(Code::kUnimplemented, "ECDSA restricted to prime curves");
  return qtls::ecdsa_sign(*c, priv, digest, drbg_).encode();
}

Result<Bytes> SoftwareProvider::prf_tls12(HashAlg alg, BytesView secret,
                                          const std::string& label,
                                          BytesView seed, size_t out_len) {
  return tls12_prf(alg, secret, label, seed, out_len);
}

Result<Bytes> SoftwareProvider::cipher_seal(const CbcHmacKeys& keys,
                                            uint64_t seq, BytesView header,
                                            BytesView iv, BytesView fragment) {
  return cbc_hmac_seal(keys, seq, header, iv, fragment);
}

Result<Bytes> SoftwareProvider::cipher_open(const CbcHmacKeys& keys,
                                            uint64_t seq,
                                            BytesView header_without_len,
                                            BytesView iv,
                                            BytesView ciphertext) {
  return cbc_hmac_open(keys, seq, header_without_len, iv, ciphertext);
}

Result<Bytes> SoftwareProvider::aead_seal(BytesView key, BytesView nonce,
                                          BytesView aad, BytesView plaintext) {
  return gcm_seal(key, nonce, aad, plaintext);
}

Result<Bytes> SoftwareProvider::aead_open(BytesView key, BytesView nonce,
                                          BytesView aad, BytesView ciphertext) {
  return gcm_open(key, nonce, aad, ciphertext);
}

Status SoftwareProvider::cipher_seal_batch(const CbcHmacKeys& keys,
                                           std::span<CipherSealJob> jobs) {
  for (CipherSealJob& job : jobs)
    cbc_hmac_seal_into(keys, job.seq, job.header, job.iv, job.fragment,
                       job.out);
  return Status::ok();
}

Status SoftwareProvider::aead_seal_batch(BytesView key,
                                         std::span<AeadSealJob> jobs) {
  Aes aes(key);
  for (AeadSealJob& job : jobs)
    gcm_seal_into(aes, job.nonce, job.aad, job.plaintext, job.out);
  return Status::ok();
}

}  // namespace qtls::engine
