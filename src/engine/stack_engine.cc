#include "engine/stack_engine.h"

namespace qtls::engine {

StackStep StackAsyncEngine::run(StackAsyncOp* op, qat::OpKind kind,
                                std::function<Result<Bytes>()> compute,
                                Bytes* out, asyncx::WaitCtx* wctx) {
  // Ready: the re-entered call jumps over submission and consumes the
  // crypto result (Figure 5's right-hand path).
  if (op->slot_.ready()) {
    Result<Bytes> result = op->slot_.take();
    if (!result.is_ok()) {
      op->status_ = result.status();
      return StackStep::kError;
    }
    op->status_ = Status::ok();
    if (out) *out = std::move(result).take();
    return StackStep::kDone;
  }
  if (op->slot_.inflight()) return StackStep::kPaused;

  // Idle or retry: (re)submit.
  auto result_box = std::make_shared<Result<Bytes>>(
      Status(Code::kInternal, "not computed"));
  qat::CryptoRequest req;
  req.request_id = next_id_++;
  req.kind = kind;
  req.compute = [result_box, compute = std::move(compute)] {
    *result_box = compute();
    return result_box->is_ok();
  };
  req.on_response = [op, result_box, wctx](const qat::CryptoResponse&) {
    op->slot_.complete(std::move(*result_box));
    if (wctx) wctx->notify();
  };
  if (!instance_->submit(std::move(req))) {
    // Ring full: the application must call the same operation again later
    // (§3.2's submission-failure path).
    ++ring_full_;
    op->slot_.mark_retry();
    if (wctx) wctx->notify();
    return StackStep::kRetry;
  }
  ++submitted_;
  op->slot_.mark_inflight();
  return StackStep::kPaused;
}

}  // namespace qtls::engine
