#include "engine/stack_engine.h"

#include <algorithm>
#include <chrono>

namespace qtls::engine {

namespace {
uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

StackStep StackAsyncEngine::run(StackAsyncOp* op, qat::OpKind kind,
                                std::function<Result<Bytes>()> compute,
                                Bytes* out, asyncx::WaitCtx* wctx) {
  // Ready: the re-entered call jumps over submission and consumes the
  // crypto result (Figure 5's right-hand path).
  if (op->slot_.ready()) {
    Result<Bytes> result = op->slot_.take();
    op->attempts_ = 0;
    op->backoff_until_ns_ = 0;
    if (!result.is_ok()) {
      op->status_ = result.status();
      return StackStep::kError;
    }
    op->status_ = Status::ok();
    if (out) *out = std::move(result).take();
    return StackStep::kDone;
  }
  if (op->slot_.inflight()) return StackStep::kPaused;

  // Backing off after a transient device error: stay in retry state without
  // submitting. Non-blocking backoff — the caller re-enters from its event
  // loop until the window has passed.
  if (op->slot_.want_retry() && op->backoff_until_ns_ != 0 &&
      steady_now_ns() < op->backoff_until_ns_)
    return StackStep::kRetry;

  // Idle or retry: (re)submit.
  if (op->slot_.idle()) op->attempts_ = 0;
  auto result_box = std::make_shared<Result<Bytes>>(
      Status(Code::kInternal, "not computed"));
  qat::CryptoRequest req;
  req.request_id = next_id_++;
  req.kind = kind;
  req.compute = [result_box, compute = std::move(compute)] {
    *result_box = compute();
    return result_box->is_ok();
  };
  req.on_response = [this, op, result_box,
                     wctx](const qat::CryptoResponse& resp) {
    if (qat::is_device_failure(resp.status)) {
      ++device_errors_;
      if (op->attempts_ <= config_.max_retries) {
        // Transient: schedule a resubmission with capped exponential
        // backoff. mark_retry() sends the state machine back through the
        // submission block on the next entry past the backoff window.
        ++op_retries_;
        const uint64_t backoff_us = std::min(
            config_.retry_backoff_cap_us,
            config_.retry_backoff_base_us
                << std::min(op->attempts_ - 1, 30));
        op->backoff_until_ns_ = steady_now_ns() + backoff_us * 1'000ULL;
        op->slot_.mark_retry();
        if (wctx) wctx->notify();
        return;
      }
      // Retries exhausted: surface a terminal error; the TLS layer turns it
      // into a clean connection teardown, not a hang.
      op->slot_.complete(
          err(Code::kUnavailable, "qat device error; retries exhausted"));
      if (wctx) wctx->notify();
      return;
    }
    op->slot_.complete(std::move(*result_box));
    if (wctx) wctx->notify();
  };
  if (!instance_->submit(std::move(req))) {
    // Ring full: the application must call the same operation again later
    // (§3.2's submission-failure path).
    ++ring_full_;
    op->slot_.mark_retry();
    if (wctx) wctx->notify();
    return StackStep::kRetry;
  }
  ++submitted_;
  ++op->attempts_;
  op->backoff_until_ns_ = 0;
  op->slot_.mark_inflight();
  return StackStep::kPaused;
}

}  // namespace qtls::engine
