// Timer-based polling thread — the default retrieval method of the stock
// QAT Engine and the foil of the paper's heuristic polling scheme (§3.3,
// §5.6): an independent thread polls the assigned QAT instances at a fixed
// interval. Costs reproduced here: the interval bounds response latency from
// below, and each wakeup steals CPU from the co-located worker.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "qat/device.h"

namespace qtls::engine {

class PollingThread {
 public:
  PollingThread(std::vector<qat::CryptoInstance*> instances,
                std::chrono::microseconds interval)
      : instances_(std::move(instances)), interval_(interval) {
    thread_ = std::thread([this] { run(); });
  }

  ~PollingThread() { stop(); }

  PollingThread(const PollingThread&) = delete;
  PollingThread& operator=(const PollingThread&) = delete;

  void stop() {
    if (thread_.joinable()) {
      stopping_.store(true, std::memory_order_release);
      thread_.join();
    }
  }

  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  uint64_t retrieved() const {
    return retrieved_.load(std::memory_order_relaxed);
  }
  // Polls that found nothing — the "ineffective polling operations" the
  // paper charges against small intervals.
  uint64_t ineffective_polls() const {
    return ineffective_.load(std::memory_order_relaxed);
  }

 private:
  void run() {
    while (!stopping_.load(std::memory_order_acquire)) {
      size_t got = 0;
      for (qat::CryptoInstance* inst : instances_) got += inst->poll();
      polls_.fetch_add(1, std::memory_order_relaxed);
      retrieved_.fetch_add(got, std::memory_order_relaxed);
      if (got == 0) ineffective_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(interval_);
    }
  }

  std::vector<qat::CryptoInstance*> instances_;
  std::chrono::microseconds interval_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> retrieved_{0};
  std::atomic<uint64_t> ineffective_{0};
  std::thread thread_;
};

}  // namespace qtls::engine
