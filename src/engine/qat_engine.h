// QAT Engine — the bridge between the TLS library and the QAT driver layer
// (paper §3.2): registers a response callback when submitting through the
// driver's non-blocking API, then either
//
//  * kSync (straight offload, the QAT+S configuration): blocks the calling
//    thread until the response is retrieved — reproducing §2.4's pathology,
//    where each offload I/O stalls the whole event loop; or
//  * kAsync (the QTLS framework): pauses the surrounding fiber
//    (asyncx::pause_job) after submission and consumes the crypto result
//    after resumption — multiple connections' ops stay in flight at once.
//
// The engine also owns the inflight counters R_asym / R_cipher / R_prf that
// feed the heuristic polling scheme (§4.3), counted exactly as the paper
// prescribes: incremented when a crypto function is invoked, decremented in
// the response callback.
//
// Failure handling (DESIGN.md "Failure model & degradation"), mirroring the
// real QAT_Engine's sw-fallback semantics:
//  * per-op deadline: a response that never arrives (dropped by the device)
//    expires the op instead of hanging the fiber/event loop;
//  * bounded retry: transient device errors are resubmitted up to
//    max_retries times (capped exponential backoff on the blocking path);
//  * circuit breaker per op class: K consecutive terminal device failures
//    flip the class to the SoftwareProvider fallback; after a cooldown the
//    next op re-probes the device and recovers offload on success.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "asyncx/job.h"
#include "engine/provider.h"
#include "obs/trace.h"
#include "qat/device.h"
#include "qat/topology.h"
#include "remote/wire.h"

namespace qtls::engine {

enum class OffloadMode { kSync, kAsync };

struct QatEngineConfig {
  OffloadMode offload_mode = OffloadMode::kAsync;
  // Per-algorithm offload switches (ssl_engine `default_algorithm ...`).
  bool offload_rsa = true;
  bool offload_ec = true;
  bool offload_prf = true;
  bool offload_cipher = true;
  // kSync only: poll the instance from the blocked thread itself (busy
  // loop). When false the caller relies on an external polling thread
  // (engine/polling_thread.h) to retrieve the response.
  bool self_poll_when_blocking = true;
  uint64_t drbg_seed = 0x716174656e67ULL;

  // --- failure handling -------------------------------------------------
  // Per-op deadline in microseconds; 0 disables deadlines entirely (no
  // clock reads on the hot path). With polled delivery the deadline sweep
  // runs inside poll(), so the worker's failover poll timer bounds how late
  // an expiry is observed. Requires kPolled delivery.
  uint64_t op_deadline_us = 0;
  // Resubmissions after a transient device error before the op is terminal.
  int max_retries = 3;
  // Blocking-path backoff between retries: base << attempt, capped.
  // (The async path reschedules through the event loop instead of
  // sleeping — it must not block the worker thread.)
  uint64_t retry_backoff_base_us = 50;
  uint64_t retry_backoff_cap_us = 2'000;
  // Circuit breaker: consecutive terminal failures per op class before the
  // class degrades to software, and how long it stays degraded before the
  // next op re-probes the device.
  int breaker_threshold = 8;
  uint64_t breaker_cooldown_ms = 100;
  // Complete an op in software when the device fails it terminally. When
  // false, the failure surfaces to the caller as Code::kUnavailable (the
  // TLS layer turns it into a clean connection teardown).
  bool sw_fallback_on_device_error = true;

  // --- remote offload tier (DESIGN.md §13) ------------------------------
  // The network-attached backend between the QAT lanes and inline software
  // in the fallback ladder. Per-op deadline for remote round trips (this is
  // also the budget propagated on the wire); 0 disables remote deadlines.
  uint64_t remote_op_deadline_us = 20'000;
  // Remote-tier breaker: consecutive remote failures before the tier is
  // skipped, and the cooldown before a half-open re-probe. Tighter than the
  // device breaker — a dead network fails much faster than a dying card.
  int remote_breaker_threshold = 4;
  uint64_t remote_breaker_cooldown_ms = 200;
};

struct QatEngineStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t submit_retries = 0;  // request-ring-full events (§3.2 retry path)
  uint64_t sync_blocks = 0;     // blocking waits taken in kSync mode
  uint64_t polls = 0;           // poll() passes over the instance set
  uint64_t polled_responses = 0;
  uint64_t max_poll_batch = 0;  // largest single-pass retrieval

  // --- batched record seal (submit_batch data plane) ----------------------
  uint64_t seal_batches = 0;    // multi-record submit_batch() dispatches
  uint64_t seal_batch_ops = 0;  // records carried by those dispatches
  uint64_t max_seal_batch = 0;  // largest single dispatch

  // --- failure handling -------------------------------------------------
  uint64_t device_errors = 0;      // responses with a device failure status
  uint64_t op_retries = 0;         // resubmissions after transient errors
  uint64_t deadline_expiries = 0;  // ops abandoned after op_deadline_us
  uint64_t sw_fallbacks = 0;       // ops completed by the software provider
                                   // (breaker open or terminal failure)
  uint64_t breaker_opens = 0;      // class flips to software fallback
  uint64_t breaker_closes = 0;     // successful re-probe restored offload

  // --- multi-device topology (DESIGN.md §12) ----------------------------
  uint64_t device_migrations = 0;  // retries resubmitted to another device
  uint64_t lane_spillovers = 0;    // submissions steered off the affine
                                   // device (down, tripped, or too deep)
  uint64_t lane_breaker_opens = 0;   // a device lane flipped unavailable
  uint64_t lane_breaker_closes = 0;  // a lane re-probe rebound the device

  // --- remote offload tier (DESIGN.md §13) ------------------------------
  uint64_t remote_ops = 0;        // ops routed to the remote backend
  uint64_t remote_completed = 0;  // server responded (ok or compute error)
  uint64_t remote_expiries = 0;   // client-side deadline expiries
  uint64_t remote_failures = 0;   // channel death / refusal / bad decode
  uint64_t remote_batches = 0;    // seal batches shipped as one frame
  uint64_t remote_breaker_opens = 0;
  uint64_t remote_breaker_closes = 0;
};

// Circuit-breaker state, per op class (QAT_Engine's sw-fallback mirror).
enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

// Defined in qat_engine.cc; derives QatEngineProvider::OpStateBase.
template <typename T>
struct TypedOpState;

// One device's worth of instances assigned to a provider — the unit the
// per-device breaker and the migration path reason about.
struct DeviceInstanceSet {
  int device_id = 0;
  std::vector<qat::CryptoInstance*> instances;
};

class QatEngineProvider : public CryptoProvider {
 public:
  QatEngineProvider(qat::CryptoInstance* instance, QatEngineConfig config);
  // §2.3: one process may be assigned multiple QAT instances from different
  // endpoints to employ more computation engines. Requests round-robin
  // across them; poll() drains all of them.
  QatEngineProvider(std::vector<qat::CryptoInstance*> instances,
                    QatEngineConfig config);
  // Multi-device form (DESIGN.md §12): instance sets grouped by device,
  // with `preferred_device` the worker's affine card. Submissions stay on
  // the affine lane; a lane whose device is offline, breaker-tripped, or
  // queue-deep spills to the shallowest healthy lane, and device failures
  // migrate the retry to another device instead of burning the class
  // breaker. `topology` is non-owning and may be null (lanes still work;
  // online-ness then comes only from the lane breakers).
  QatEngineProvider(qat::DeviceTopology* topology, int preferred_device,
                    std::vector<DeviceInstanceSet> sets,
                    QatEngineConfig config);

  const char* name() const override { return "qat"; }

  Result<Bytes> rsa_sign(const RsaPrivateKey& key, BytesView digest) override;
  Result<Bytes> rsa_decrypt(const RsaPrivateKey& key,
                            BytesView ciphertext) override;
  Result<KeyShare> ecdhe_keygen(CurveId curve) override;
  Result<Bytes> ecdhe_derive(const KeyShare& mine,
                             BytesView peer_point) override;
  Result<Bytes> ecdsa_sign(CurveId curve, const Bignum& priv,
                           BytesView digest) override;
  Result<Bytes> prf_tls12(HashAlg alg, BytesView secret,
                          const std::string& label, BytesView seed,
                          size_t out_len) override;
  Result<Bytes> cipher_seal(const CbcHmacKeys& keys, uint64_t seq,
                            BytesView header, BytesView iv,
                            BytesView fragment) override;
  Result<Bytes> cipher_open(const CbcHmacKeys& keys, uint64_t seq,
                            BytesView header_without_len, BytesView iv,
                            BytesView ciphertext) override;
  Result<Bytes> aead_seal(BytesView key, BytesView nonce, BytesView aad,
                          BytesView plaintext) override;
  Result<Bytes> aead_open(BytesView key, BytesView nonce, BytesView aad,
                          BytesView ciphertext) override;
  // Batched record seal: the whole span goes to the device as ONE
  // submit_batch() dispatch (one engine wakeup for N records, §3.2).
  Status cipher_seal_batch(const CbcHmacKeys& keys,
                           std::span<CipherSealJob> jobs) override;
  Status aead_seal_batch(BytesView key, std::span<AeadSealJob> jobs) override;

  // --- engine commands (paper §4.3's new command surface) -----------------
  size_t inflight(qat::OpClass cls) const {
    return inflight_[static_cast<int>(cls)].load(std::memory_order_acquire);
  }
  size_t inflight_total() const {
    size_t total = 0;
    for (const auto& c : inflight_) total += c.load(std::memory_order_acquire);
    return total;
  }

  // Drain up to `max` QAT responses in one batched pass across ALL assigned
  // instances (runs response callbacks; resumable jobs are signalled through
  // their WaitCtx). The per-instance drain is wait-free on the ring-consumer
  // side, so one heuristic trigger retrieves every ready response without
  // taking a lock. Returns retrieved count.
  size_t poll(size_t max = static_cast<size_t>(-1));

  qat::CryptoInstance* instance() const { return instances_.front(); }
  const std::vector<qat::CryptoInstance*>& instances() const {
    return instances_;
  }
  const QatEngineStats& stats() const { return stats_; }
  const QatEngineConfig& config() const { return config_; }

  // Current breaker state for an op class (observability + tests).
  BreakerState breaker_state(qat::OpClass cls) const {
    return static_cast<BreakerState>(
        breakers_[static_cast<int>(cls)].state.load(
            std::memory_order_acquire));
  }
  // Ops registered for deadline tracking but not yet completed/expired.
  size_t pending_deadline_ops() const;

  // --- multi-device lanes (observability + tests) -------------------------
  qat::DeviceTopology* topology() const { return topology_; }
  int preferred_device() const { return preferred_device_; }
  size_t num_lanes() const { return lanes_.size(); }
  int lane_device(size_t lane) const { return lanes_[lane]->device_id; }
  BreakerState lane_breaker_state(size_t lane) const {
    return static_cast<BreakerState>(
        lanes_[lane]->breaker.state.load(std::memory_order_acquire));
  }
  uint64_t lane_submitted(size_t lane) const {
    return lanes_[lane]->submitted.load(std::memory_order_relaxed);
  }
  // The GET /stats "topology.lanes" array: one entry per assigned device.
  std::string lanes_json() const;

  // --- remote offload tier (DESIGN.md §13) --------------------------------
  // Attach the network-attached backend as the ladder tier between the QAT
  // lanes and inline software. Non-owning; the backend must outlive the
  // provider (the worker pool owns both). Null detaches.
  void set_remote_backend(remote::RemoteBackend* backend) {
    remote_ = backend;
  }
  remote::RemoteBackend* remote_backend() const { return remote_; }
  BreakerState remote_breaker_state() const {
    return static_cast<BreakerState>(
        remote_breaker_.state.load(std::memory_order_acquire));
  }
  // The GET /stats "remote" object: engine-side tier counters plus the
  // channel's own stats.
  std::string remote_json() const;

 private:
  template <typename T>
  friend struct TypedOpState;

  // Type-erased base of an in-flight offload. `done` flips in the response
  // callback; `abandoned` flips in the deadline sweep. Both the callback and
  // the sweep run in poll() on the polling (worker) thread — the polled
  // delivery contract is what makes abandon-vs-late-response handling
  // race-free without a per-op lock. Deadlines are NOT supported with
  // kInterrupt delivery or an external polling thread.
  struct OpStateBase {
    std::atomic<bool> done{false};
    std::atomic<bool> abandoned{false};  // deadline expired; drop late resp.
    qat::CryptoStatus dev_status = qat::CryptoStatus::kSuccess;
    asyncx::WaitCtx* wctx = nullptr;  // cleared/unused after abandonment
    uint64_t deadline_ns = 0;         // absolute steady-clock ns; 0 = none
    int cls = 0;                      // op class, for inflight accounting
    uint64_t req_id = 0;              // device request id (trace records)
    // Lifecycle stamps copied from the response in the callback; the
    // resuming thread stamps fiber-resume and folds them into the global
    // per-stage histograms (obs/trace.h).
    obs::TraceStamps trace;
  };

  struct ClassBreaker {
    std::atomic<uint8_t> state{static_cast<uint8_t>(BreakerState::kClosed)};
    std::atomic<int> consecutive_failures{0};
    std::atomic<uint64_t> open_until_ns{0};
  };

  // One device's lane: its instances, a round-robin cursor, and a breaker
  // tracking DEVICE failures regardless of op class — K consecutive ones
  // flip the lane unavailable so submissions spill to surviving devices
  // (never to software while another lane is up); the half-open probe
  // rebinds the device after the cooldown, or immediately after a topology
  // re_add (generation bump).
  struct DeviceLane {
    int device_id = 0;
    std::vector<qat::CryptoInstance*> instances;
    std::atomic<size_t> rr{0};
    ClassBreaker breaker;
    std::atomic<uint64_t> submitted{0};
    // Topology generation this lane last observed; a mismatch on a tripped
    // lane re-probes without waiting out the cooldown.
    std::atomic<uint64_t> seen_generation{0};
  };

  // Generic offload runner. `compute` executes on a QAT engine thread; the
  // calling thread blocks (kSync) or fiber-pauses (kAsync) until the
  // response callback fires. Handles deadline expiry, bounded retry on
  // transient device errors, and breaker-driven software fallback (running
  // `compute` on the calling thread IS the software path — the closures are
  // self-contained).
  // How an op travels the wire (DESIGN.md §13): which RemoteOp it is, how
  // to build the request body, and how to decode a success payload.
  template <typename T>
  struct RemoteSpec {
    remote::RemoteOp op = remote::RemoteOp::kPrfTls12;
    std::function<Bytes()> encode;
    std::function<Result<T>(BytesView)> decode;
  };

  // `rspec` (optional) describes how the op travels the remote tier; when
  // set, the ladder tries QAT lanes, then the remote backend, then inline
  // software — never skipping a live tier.
  template <typename T>
  Result<T> offload(qat::OpKind kind, std::function<Result<T>()> compute,
                    const RemoteSpec<T>* rspec = nullptr);

  // Batched variant for record seals: submits all computes as one device
  // batch, waits for every response, appends each result to outs[i]. Items
  // the device fails are retried through the single-op offload() runner
  // (which owns the backoff/breaker/fallback semantics); abandoned items
  // (deadline) fall back to inline compute like the single path.
  Status run_seal_batch(
      const std::vector<std::function<Result<Bytes>()>>& computes,
      const std::vector<Bytes*>& outs,
      const std::vector<RemoteSpec<Bytes>>* rspecs = nullptr);

  // Circuit breaker (cheap on the happy path: one relaxed load per op).
  bool offload_allowed(qat::OpClass cls);
  void breaker_on_success(qat::OpClass cls);
  void breaker_on_failure(qat::OpClass cls);

  // --- remote offload tier (DESIGN.md §13) --------------------------------
  // Run one op through the remote backend. Returns true when the tier
  // settled the op (*out holds the result — possibly a deterministic
  // compute error, which is terminal exactly like a local kComputeError);
  // false when the tier was unavailable, refused, expired, or died, in
  // which case the caller continues down the ladder to software.
  template <typename T>
  bool try_remote(qat::OpClass cls, const RemoteSpec<T>& spec, Result<T>* out);
  // Remote half of run_seal_batch: ships every spec as ONE frame, settles
  // per record (remote-failed records fall back to the inline compute).
  // False when the tier was unavailable before anything was submitted.
  bool try_remote_seal_batch(
      qat::OpClass cls, const std::vector<RemoteSpec<Bytes>>& specs,
      const std::vector<std::function<Result<Bytes>()>>& computes,
      const std::vector<Bytes*>& outs, Status* result);
  // Gate mirroring offload_allowed: channel alive and tier breaker closed
  // (or this op wins the half-open probe CAS).
  bool remote_tier_available();
  // Passive form for the charge decision: a live remote tier shields the
  // per-class breaker the same way a surviving lane does. No CAS — this
  // must not consume the half-open probe.
  bool remote_tier_live() const;
  void remote_on_success();
  void remote_on_failure();

  // --- multi-device lanes -------------------------------------------------
  // Whether submissions may target this lane right now: device online (per
  // the topology), breaker closed — or open with the cooldown elapsed / the
  // topology generation moved, in which case the caller wins the half-open
  // probe.
  bool lane_allowed(DeviceLane& lane);
  // Win the half-open probe on a tripped lane when its cooldown elapsed or
  // the topology generation moved (re_add). Returns the lane on success.
  DeviceLane* try_probe_lane(DeviceLane& lane);
  // This provider's share of the lane's device queue (spillover signal).
  size_t lane_depth(const DeviceLane& lane) const;
  // Pick the lane for a submission: the affine lane unless it is
  // disallowed, excluded (a retry migrating off a failed device), or
  // deeper than the shallowest healthy lane by more than the topology's
  // spill threshold. Null when no lane is currently allowed.
  DeviceLane* choose_lane(int exclude_device);
  qat::CryptoInstance* lane_instance(DeviceLane& lane);
  void lane_on_success(DeviceLane& lane);
  void lane_on_failure(DeviceLane& lane);
  // True when some OTHER allowed lane exists — the migration guard that
  // keeps one dead device from tripping the per-class breaker.
  bool other_lane_available(int device_id);

  // Expire past-deadline ops: mark abandoned, release the inflight slot,
  // wake the waiting fiber. Called from poll().
  void sweep_deadlines(uint64_t now);

  static uint64_t steady_now_ns();

  // Curve -> modelled op kind.
  static qat::OpKind ec_op_kind(CurveId curve);

  std::vector<qat::CryptoInstance*> instances_;  // flattened, for poll()
  std::atomic<size_t> next_instance_{0};
  // Per-device lanes (heap-allocated: atomics are immovable). The legacy
  // constructors build one lane with device_id 0.
  std::vector<std::unique_ptr<DeviceLane>> lanes_;
  qat::DeviceTopology* topology_ = nullptr;  // non-owning; may be null
  int preferred_device_ = 0;
  QatEngineConfig config_;
  SoftwareProvider fallback_;
  std::atomic<size_t> inflight_[qat::kNumOpClasses];
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> engine_drbg_nonce_{1};
  QatEngineStats stats_;
  ClassBreaker breakers_[qat::kNumOpClasses];
  // Remote tier: non-owning backend pointer + the tier breaker. One breaker
  // for the whole tier (not per class): the failure domain is the channel.
  remote::RemoteBackend* remote_ = nullptr;
  ClassBreaker remote_breaker_;
  // Deadline registry (async ops only; sync ops check the clock in their
  // own spin loop). Touched only when op_deadline_us != 0.
  mutable std::mutex pending_mu_;
  std::vector<std::shared_ptr<OpStateBase>> pending_;
};

}  // namespace qtls::engine
