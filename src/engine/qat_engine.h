// QAT Engine — the bridge between the TLS library and the QAT driver layer
// (paper §3.2): registers a response callback when submitting through the
// driver's non-blocking API, then either
//
//  * kSync (straight offload, the QAT+S configuration): blocks the calling
//    thread until the response is retrieved — reproducing §2.4's pathology,
//    where each offload I/O stalls the whole event loop; or
//  * kAsync (the QTLS framework): pauses the surrounding fiber
//    (asyncx::pause_job) after submission and consumes the crypto result
//    after resumption — multiple connections' ops stay in flight at once.
//
// The engine also owns the inflight counters R_asym / R_cipher / R_prf that
// feed the heuristic polling scheme (§4.3), counted exactly as the paper
// prescribes: incremented when a crypto function is invoked, decremented in
// the response callback.
#pragma once

#include <atomic>
#include <memory>

#include "asyncx/job.h"
#include "engine/provider.h"
#include "qat/device.h"

namespace qtls::engine {

enum class OffloadMode { kSync, kAsync };

struct QatEngineConfig {
  OffloadMode offload_mode = OffloadMode::kAsync;
  // Per-algorithm offload switches (ssl_engine `default_algorithm ...`).
  bool offload_rsa = true;
  bool offload_ec = true;
  bool offload_prf = true;
  bool offload_cipher = true;
  // kSync only: poll the instance from the blocked thread itself (busy
  // loop). When false the caller relies on an external polling thread
  // (engine/polling_thread.h) to retrieve the response.
  bool self_poll_when_blocking = true;
  uint64_t drbg_seed = 0x716174656e67ULL;
};

struct QatEngineStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t submit_retries = 0;  // request-ring-full events (§3.2 retry path)
  uint64_t sync_blocks = 0;     // blocking waits taken in kSync mode
  uint64_t polls = 0;           // poll() passes over the instance set
  uint64_t polled_responses = 0;
  uint64_t max_poll_batch = 0;  // largest single-pass retrieval
};

class QatEngineProvider : public CryptoProvider {
 public:
  QatEngineProvider(qat::CryptoInstance* instance, QatEngineConfig config);
  // §2.3: one process may be assigned multiple QAT instances from different
  // endpoints to employ more computation engines. Requests round-robin
  // across them; poll() drains all of them.
  QatEngineProvider(std::vector<qat::CryptoInstance*> instances,
                    QatEngineConfig config);

  const char* name() const override { return "qat"; }

  Result<Bytes> rsa_sign(const RsaPrivateKey& key, BytesView digest) override;
  Result<Bytes> rsa_decrypt(const RsaPrivateKey& key,
                            BytesView ciphertext) override;
  Result<KeyShare> ecdhe_keygen(CurveId curve) override;
  Result<Bytes> ecdhe_derive(const KeyShare& mine,
                             BytesView peer_point) override;
  Result<Bytes> ecdsa_sign(CurveId curve, const Bignum& priv,
                           BytesView digest) override;
  Result<Bytes> prf_tls12(HashAlg alg, BytesView secret,
                          const std::string& label, BytesView seed,
                          size_t out_len) override;
  Result<Bytes> cipher_seal(const CbcHmacKeys& keys, uint64_t seq,
                            BytesView header, BytesView iv,
                            BytesView fragment) override;
  Result<Bytes> cipher_open(const CbcHmacKeys& keys, uint64_t seq,
                            BytesView header_without_len, BytesView iv,
                            BytesView ciphertext) override;
  Result<Bytes> aead_seal(BytesView key, BytesView nonce, BytesView aad,
                          BytesView plaintext) override;
  Result<Bytes> aead_open(BytesView key, BytesView nonce, BytesView aad,
                          BytesView ciphertext) override;

  // --- engine commands (paper §4.3's new command surface) -----------------
  size_t inflight(qat::OpClass cls) const {
    return inflight_[static_cast<int>(cls)].load(std::memory_order_acquire);
  }
  size_t inflight_total() const {
    size_t total = 0;
    for (const auto& c : inflight_) total += c.load(std::memory_order_acquire);
    return total;
  }

  // Drain up to `max` QAT responses in one batched pass across ALL assigned
  // instances (runs response callbacks; resumable jobs are signalled through
  // their WaitCtx). The per-instance drain is wait-free on the ring-consumer
  // side, so one heuristic trigger retrieves every ready response without
  // taking a lock. Returns retrieved count.
  size_t poll(size_t max = static_cast<size_t>(-1));

  qat::CryptoInstance* instance() const { return instances_.front(); }
  const std::vector<qat::CryptoInstance*>& instances() const {
    return instances_;
  }
  const QatEngineStats& stats() const { return stats_; }
  const QatEngineConfig& config() const { return config_; }

 private:
  struct OpState;

  // Generic offload runner. `compute` executes on a QAT engine thread; the
  // calling thread blocks (kSync) or fiber-pauses (kAsync) until the
  // response callback fires.
  template <typename T>
  Result<T> offload(qat::OpKind kind, std::function<Result<T>()> compute);

  // Curve -> modelled op kind.
  static qat::OpKind ec_op_kind(CurveId curve);

  std::vector<qat::CryptoInstance*> instances_;
  std::atomic<size_t> next_instance_{0};
  QatEngineConfig config_;
  SoftwareProvider fallback_;
  std::atomic<size_t> inflight_[qat::kNumOpClasses];
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> engine_drbg_nonce_{1};
  QatEngineStats stats_;
};

}  // namespace qtls::engine
