#include "remote/offload_server.h"

#include <poll.h>

#include <algorithm>
#include <utility>

namespace qtls::remote {

namespace {

// DRBG ops carry the caller's seed so the result is reproducible: the same
// seed always yields the same key share / nonce, which the parity tests
// rely on.
HmacDrbg seeded_drbg(uint64_t seed) {
  Bytes seed_bytes;
  append_u64(seed_bytes, seed);
  return HmacDrbg(HashAlg::kSha256, seed_bytes);
}

bool valid_hash_alg(uint8_t v) {
  return v <= static_cast<uint8_t>(HashAlg::kSha512);
}

bool valid_curve(uint8_t v) {
  switch (static_cast<CurveId>(v)) {
    case CurveId::kP256:
    case CurveId::kP384:
    case CurveId::kB283:
    case CurveId::kB409:
    case CurveId::kK283:
    case CurveId::kK409:
      return true;
  }
  return false;
}

}  // namespace

OffloadServerCore::OffloadServerCore() : OffloadServerCore(Config()) {}

OffloadServerCore::OffloadServerCore(Config cfg)
    : cfg_(cfg), decoder_(cfg.max_frame), provider_(cfg.drbg_seed) {}

void OffloadServerCore::consume(size_t n) {
  out_.erase(out_.begin(), out_.begin() + std::min(n, out_.size()));
}

Status OffloadServerCore::on_bytes(BytesView data) {
  stats_.bytes_rx += data.size();
  QTLS_RETURN_IF_ERROR(decoder_.feed(data));
  Frame frame;
  while (decoder_.next(&frame)) {
    if (frame.type != FrameType::kBatchRequest)
      return err(Code::kProtocolError, "offload server: response frame rx");
    ++stats_.frames_rx;
    std::vector<RemoteOpResponse> responses;
    responses.reserve(frame.requests.size());
    for (const RemoteOpRequest& req : frame.requests) {
      ++stats_.ops_rx;
      RemoteOpResponse rsp;
      rsp.request_id = req.request_id;
      if (req.budget_us != 0 &&
          cfg_.queue_delay_ns >= uint64_t{req.budget_us} * 1000) {
        // Budget gone before service: refuse without executing.
        rsp.status = RemoteStatus::kBudgetExhausted;
        ++stats_.refused_expired;
      } else {
        rsp = execute(req);
        rsp.request_id = req.request_id;
        switch (rsp.status) {
          case RemoteStatus::kOk: ++stats_.ops_ok; break;
          case RemoteStatus::kComputeError: ++stats_.compute_errors; break;
          default: ++stats_.bad_requests; break;
        }
      }
      responses.push_back(std::move(rsp));
    }
    const size_t before = out_.size();
    encode_response_frame(frame.batch_id, responses, &out_);
    stats_.bytes_tx += out_.size() - before;
  }
  return Status::ok();
}

RemoteOpResponse OffloadServerCore::execute(const RemoteOpRequest& req) {
  RemoteOpResponse rsp;
  rsp.status = RemoteStatus::kBadRequest;

  ByteReader r(req.body);
  auto finish = [&rsp](Result<Bytes> result) {
    if (result.is_ok()) {
      rsp.status = RemoteStatus::kOk;
      rsp.body = std::move(result).take();
    } else {
      rsp.status = RemoteStatus::kComputeError;
      encode_error_body(result.status(), &rsp.body);
    }
  };

  switch (req.op) {
    case RemoteOp::kRsaSign:
    case RemoteOp::kRsaDecrypt: {
      const Bytes key_text = read_lv(r);
      const Bytes data = read_lv(r);
      if (!r.ok() || r.remaining() != 0) return rsp;
      Result<RsaPrivateKey> key = RsaPrivateKey::deserialize(
          std::string(key_text.begin(), key_text.end()));
      if (!key.is_ok()) return rsp;
      finish(req.op == RemoteOp::kRsaSign
                 ? provider_.rsa_sign(key.value(), data)
                 : provider_.rsa_decrypt(key.value(), data));
      return rsp;
    }
    case RemoteOp::kEcdheKeygen: {
      const uint8_t curve = r.u8();
      const uint64_t seed = r.u64();
      if (!r.ok() || r.remaining() != 0 || !valid_curve(curve)) return rsp;
      HmacDrbg rng = seeded_drbg(seed);
      Result<engine::KeyShare> share =
          engine::ecdhe_keygen_impl(static_cast<CurveId>(curve), rng);
      if (!share.is_ok()) {
        rsp.status = RemoteStatus::kComputeError;
        encode_error_body(share.status(), &rsp.body);
        return rsp;
      }
      WireKeyShare wire;
      wire.curve = static_cast<uint8_t>(share.value().curve);
      wire.priv = std::move(share.value().priv);
      wire.pub_point = std::move(share.value().pub_point);
      rsp.status = RemoteStatus::kOk;
      encode_keyshare_body(wire, &rsp.body);
      return rsp;
    }
    case RemoteOp::kEcdheDerive: {
      const uint8_t curve = r.u8();
      engine::KeyShare mine;
      mine.priv = read_lv(r);
      mine.pub_point = read_lv(r);
      const Bytes peer = read_lv(r);
      if (!r.ok() || r.remaining() != 0 || !valid_curve(curve)) return rsp;
      mine.curve = static_cast<CurveId>(curve);
      finish(engine::ecdhe_derive_impl(mine, peer));
      return rsp;
    }
    case RemoteOp::kEcdsaSign: {
      const uint8_t curve_id = r.u8();
      const uint64_t seed = r.u64();
      const Bytes priv_be = read_lv(r);
      const Bytes digest = read_lv(r);
      if (!r.ok() || r.remaining() != 0) return rsp;
      const EcCurve* curve =
          engine::prime_curve(static_cast<CurveId>(curve_id));
      if (!curve) return rsp;  // binary-curve ECDSA: DESIGN.md §6
      HmacDrbg rng = seeded_drbg(seed);
      rsp.status = RemoteStatus::kOk;
      rsp.body =
          ecdsa_sign(*curve, Bignum::from_bytes_be(priv_be), digest, rng)
              .encode();
      return rsp;
    }
    case RemoteOp::kPrfTls12: {
      const uint8_t alg = r.u8();
      const uint32_t out_len = r.u32();
      const Bytes secret = read_lv(r);
      const Bytes label = read_lv(r);
      const Bytes seed = read_lv(r);
      if (!r.ok() || r.remaining() != 0 || !valid_hash_alg(alg)) return rsp;
      finish(provider_.prf_tls12(static_cast<HashAlg>(alg), secret,
                                 to_string(label), seed, out_len));
      return rsp;
    }
    case RemoteOp::kCipherSeal:
    case RemoteOp::kCipherOpen: {
      CbcHmacKeys keys;
      const uint8_t mac_alg = r.u8();
      keys.enc_key = read_lv(r);
      keys.mac_key = read_lv(r);
      const uint64_t seq = r.u64();
      const Bytes header = read_lv(r);
      const Bytes iv = read_lv(r);
      const Bytes text = read_lv(r);
      if (!r.ok() || r.remaining() != 0 || !valid_hash_alg(mac_alg))
        return rsp;
      keys.mac_alg = static_cast<HashAlg>(mac_alg);
      finish(req.op == RemoteOp::kCipherSeal
                 ? provider_.cipher_seal(keys, seq, header, iv, text)
                 : provider_.cipher_open(keys, seq, header, iv, text));
      return rsp;
    }
    case RemoteOp::kAeadSeal:
    case RemoteOp::kAeadOpen: {
      const Bytes key = read_lv(r);
      const Bytes nonce = read_lv(r);
      const Bytes aad = read_lv(r);
      const Bytes text = read_lv(r);
      if (!r.ok() || r.remaining() != 0) return rsp;
      finish(req.op == RemoteOp::kAeadSeal
                 ? provider_.aead_seal(key, nonce, aad, text)
                 : provider_.aead_open(key, nonce, aad, text));
      return rsp;
    }
  }
  return rsp;
}

// ------------------------------------------------------------- TCP shell --

OffloadServer::OffloadServer(OffloadServerCore::Config cfg) : cfg_(cfg) {}

OffloadServer::~OffloadServer() = default;

Status OffloadServer::start(uint16_t port) {
  return listener_.listen(port);
}

size_t OffloadServer::run_once(int timeout_ms) {
  std::vector<struct pollfd> pfds;
  pfds.push_back({listener_.fd(), POLLIN, 0});
  for (const Conn& c : conns_) {
    short events = POLLIN;
    if (!c.core->output().empty()) events |= POLLOUT;
    pfds.push_back({c.transport->fd(), events, 0});
  }
  const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n <= 0) return 0;

  if (pfds[0].revents & POLLIN) {
    int fd;
    while ((fd = listener_.accept_fd()) >= 0) {
      Conn c;
      c.transport = std::make_unique<net::SocketTransport>(fd);
      c.core = std::make_unique<OffloadServerCore>(cfg_);
      conns_.push_back(std::move(c));
    }
  }

  size_t serviced = 0;
  // Service every connection each round: accepts above may not be in pfds
  // yet, and a read can queue output that is writable immediately.
  for (size_t i = 0; i < conns_.size();) {
    Conn& c = conns_[i];
    const uint64_t ops_before = c.core->stats().ops_rx;
    bool dead = false;
    uint8_t buf[4096];
    for (;;) {
      const tls::IoResult r = c.transport->read(buf, sizeof(buf));
      if (r.status == tls::IoStatus::kWouldBlock) break;
      if (r.status != tls::IoStatus::kOk || r.bytes == 0) {
        dead = true;
        break;
      }
      if (!c.core->on_bytes(BytesView(buf, r.bytes)).is_ok()) {
        dead = true;  // poisoned stream: no resync point, drop the conn
        break;
      }
    }
    while (!dead && !c.core->output().empty()) {
      const Bytes& out = c.core->output();
      const tls::IoResult r = c.transport->write(out.data(), out.size());
      if (r.status == tls::IoStatus::kOk) {
        c.core->consume(r.bytes);
        continue;
      }
      if (r.status == tls::IoStatus::kWouldBlock) break;
      dead = true;
    }
    serviced += c.core->stats().ops_rx - ops_before;
    if (dead) {
      const OffloadServerCore::Stats& s = c.core->stats();
      closed_stats_.frames_rx += s.frames_rx;
      closed_stats_.ops_rx += s.ops_rx;
      closed_stats_.ops_ok += s.ops_ok;
      closed_stats_.compute_errors += s.compute_errors;
      closed_stats_.refused_expired += s.refused_expired;
      closed_stats_.bad_requests += s.bad_requests;
      closed_stats_.bytes_rx += s.bytes_rx;
      closed_stats_.bytes_tx += s.bytes_tx;
      conns_.erase(conns_.begin() + i);
    } else {
      ++i;
    }
  }
  return serviced;
}

void OffloadServer::serve(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed)) run_once(20);
}

OffloadServerCore::Stats OffloadServer::total_stats() const {
  OffloadServerCore::Stats total = closed_stats_;
  for (const Conn& c : conns_) {
    const OffloadServerCore::Stats& s = c.core->stats();
    total.frames_rx += s.frames_rx;
    total.ops_rx += s.ops_rx;
    total.ops_ok += s.ops_ok;
    total.compute_errors += s.compute_errors;
    total.refused_expired += s.refused_expired;
    total.bad_requests += s.bad_requests;
    total.bytes_rx += s.bytes_rx;
    total.bytes_tx += s.bytes_tx;
  }
  return total;
}

}  // namespace qtls::remote
