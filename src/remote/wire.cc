#include "remote/wire.h"

namespace qtls::remote {

const char* remote_status_name(RemoteStatus s) {
  switch (s) {
    case RemoteStatus::kOk: return "ok";
    case RemoteStatus::kComputeError: return "compute_error";
    case RemoteStatus::kBudgetExhausted: return "budget_exhausted";
    case RemoteStatus::kBadRequest: return "bad_request";
    case RemoteStatus::kDeadlineExpired: return "deadline_expired";
    case RemoteStatus::kChannelDown: return "channel_down";
  }
  return "?";
}

void append_lv(Bytes& dst, BytesView v) {
  append_u32(dst, static_cast<uint32_t>(v.size()));
  append(dst, v);
}

Bytes read_lv(ByteReader& r) {
  const uint32_t len = r.u32();
  return r.bytes(len);
}

// ------------------------------------------------------------ framing ----

namespace {

void encode_frame_header(FrameType type, uint64_t batch_id, uint16_t count,
                         Bytes* payload) {
  append_u8(*payload, kWireMagic);
  append_u8(*payload, kWireVersion);
  append_u8(*payload, static_cast<uint8_t>(type));
  append_u64(*payload, batch_id);
  append_u16(*payload, count);
}

void prefix_and_append(const Bytes& payload, Bytes* out) {
  append_u32(*out, static_cast<uint32_t>(payload.size()));
  append(*out, payload);
}

bool valid_op(uint8_t op) {
  return op >= static_cast<uint8_t>(RemoteOp::kRsaSign) &&
         op <= static_cast<uint8_t>(RemoteOp::kAeadOpen);
}

}  // namespace

void encode_request_frame(uint64_t batch_id,
                          std::span<const RemoteOpRequest> ops, Bytes* out) {
  Bytes payload;
  encode_frame_header(FrameType::kBatchRequest, batch_id,
                      static_cast<uint16_t>(ops.size()), &payload);
  for (const RemoteOpRequest& op : ops) {
    append_u64(payload, op.request_id);
    append_u8(payload, static_cast<uint8_t>(op.op));
    append_u32(payload, op.budget_us);
    append_lv(payload, op.body);
  }
  prefix_and_append(payload, out);
}

void encode_response_frame(uint64_t batch_id,
                           std::span<const RemoteOpResponse> ops, Bytes* out) {
  Bytes payload;
  encode_frame_header(FrameType::kBatchResponse, batch_id,
                      static_cast<uint16_t>(ops.size()), &payload);
  for (const RemoteOpResponse& op : ops) {
    append_u64(payload, op.request_id);
    append_u8(payload, static_cast<uint8_t>(op.status));
    append_lv(payload, op.body);
  }
  prefix_and_append(payload, out);
}

Status FrameDecoder::poison(const std::string& why) {
  poisoned_ = true;
  buf_.clear();
  return err(Code::kProtocolError, "remote wire: " + why);
}

Status FrameDecoder::feed(BytesView data) {
  if (poisoned_) return err(Code::kProtocolError, "remote wire: poisoned");
  append(buf_, data);

  for (;;) {
    if (buf_.size() < 4) return Status::ok();
    ByteReader lenr(buf_);
    const uint32_t len = lenr.u32();
    if (len > max_frame_) return poison("frame exceeds bound");
    if (buf_.size() < 4 + len) return Status::ok();

    ByteReader r(BytesView(buf_).subspan(4, len));
    Frame frame;
    const uint8_t magic = r.u8();
    const uint8_t version = r.u8();
    const uint8_t type = r.u8();
    frame.batch_id = r.u64();
    const uint16_t count = r.u16();
    if (!r.ok() || magic != kWireMagic) return poison("bad magic");
    if (version != kWireVersion) return poison("bad version");
    if (type == static_cast<uint8_t>(FrameType::kBatchRequest)) {
      frame.type = FrameType::kBatchRequest;
      frame.requests.reserve(count);
      for (uint16_t i = 0; i < count; ++i) {
        RemoteOpRequest op;
        op.request_id = r.u64();
        const uint8_t kind = r.u8();
        op.budget_us = r.u32();
        op.body = read_lv(r);
        if (!r.ok()) return poison("truncated request op");
        if (!valid_op(kind)) return poison("unknown op kind");
        op.op = static_cast<RemoteOp>(kind);
        frame.requests.push_back(std::move(op));
      }
    } else if (type == static_cast<uint8_t>(FrameType::kBatchResponse)) {
      frame.type = FrameType::kBatchResponse;
      frame.responses.reserve(count);
      for (uint16_t i = 0; i < count; ++i) {
        RemoteOpResponse op;
        op.request_id = r.u64();
        op.status = static_cast<RemoteStatus>(r.u8());
        op.body = read_lv(r);
        if (!r.ok()) return poison("truncated response op");
        frame.responses.push_back(std::move(op));
      }
    } else {
      return poison("unknown frame type");
    }
    if (r.remaining() != 0) return poison("trailing bytes in frame");

    buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
    ++frames_decoded_;
    ready_.push_back(std::move(frame));
  }
}

bool FrameDecoder::next(Frame* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

// ----------------------------------------------------------- op bodies ----

Bytes encode_rsa_op(const RsaPrivateKey& key, BytesView data) {
  Bytes body;
  const std::string key_text = key.serialize();
  append_lv(body, BytesView(reinterpret_cast<const uint8_t*>(key_text.data()),
                            key_text.size()));
  append_lv(body, data);
  return body;
}

Bytes encode_ecdhe_keygen(CurveId curve, uint64_t seed) {
  Bytes body;
  append_u8(body, static_cast<uint8_t>(curve));
  append_u64(body, seed);
  return body;
}

Bytes encode_ecdhe_derive(CurveId curve, BytesView priv, BytesView pub_point,
                          BytesView peer_point) {
  Bytes body;
  append_u8(body, static_cast<uint8_t>(curve));
  append_lv(body, priv);
  append_lv(body, pub_point);
  append_lv(body, peer_point);
  return body;
}

Bytes encode_ecdsa_sign(CurveId curve, BytesView priv_be, BytesView digest,
                        uint64_t seed) {
  Bytes body;
  append_u8(body, static_cast<uint8_t>(curve));
  append_u64(body, seed);
  append_lv(body, priv_be);
  append_lv(body, digest);
  return body;
}

Bytes encode_prf_tls12(HashAlg alg, BytesView secret, const std::string& label,
                       BytesView seed, uint32_t out_len) {
  Bytes body;
  append_u8(body, static_cast<uint8_t>(alg));
  append_u32(body, out_len);
  append_lv(body, secret);
  append_lv(body, BytesView(reinterpret_cast<const uint8_t*>(label.data()),
                            label.size()));
  append_lv(body, seed);
  return body;
}

namespace {
void append_cbc_keys(const CbcHmacKeys& keys, Bytes* body) {
  append_u8(*body, static_cast<uint8_t>(keys.mac_alg));
  append_lv(*body, keys.enc_key);
  append_lv(*body, keys.mac_key);
}
}  // namespace

Bytes encode_cipher_seal(const CbcHmacKeys& keys, uint64_t seq,
                         BytesView header, BytesView iv, BytesView fragment) {
  Bytes body;
  append_cbc_keys(keys, &body);
  append_u64(body, seq);
  append_lv(body, header);
  append_lv(body, iv);
  append_lv(body, fragment);
  return body;
}

Bytes encode_cipher_open(const CbcHmacKeys& keys, uint64_t seq,
                         BytesView header_without_len, BytesView iv,
                         BytesView ciphertext) {
  // Same layout as seal; the op kind disambiguates.
  return encode_cipher_seal(keys, seq, header_without_len, iv, ciphertext);
}

Bytes encode_aead_op(BytesView key, BytesView nonce, BytesView aad,
                     BytesView text) {
  Bytes body;
  append_lv(body, key);
  append_lv(body, nonce);
  append_lv(body, aad);
  append_lv(body, text);
  return body;
}

void encode_keyshare_body(const WireKeyShare& share, Bytes* out) {
  append_u8(*out, share.curve);
  append_lv(*out, share.priv);
  append_lv(*out, share.pub_point);
}

Result<WireKeyShare> decode_keyshare_body(BytesView body) {
  ByteReader r(body);
  WireKeyShare share;
  share.curve = r.u8();
  share.priv = read_lv(r);
  share.pub_point = read_lv(r);
  if (!r.ok() || r.remaining() != 0)
    return err(Code::kProtocolError, "remote wire: bad keyshare body");
  return share;
}

void encode_error_body(const Status& st, Bytes* out) {
  append_u8(*out, static_cast<uint8_t>(st.code()));
  append(*out, BytesView(reinterpret_cast<const uint8_t*>(st.message().data()),
                         st.message().size()));
}

Status decode_error_body(BytesView body) {
  if (body.empty()) return err(Code::kInternal, "remote compute error");
  const Code code = static_cast<Code>(body[0]);
  return Status(code == Code::kOk ? Code::kInternal : code,
                to_string(body.subspan(1)));
}

}  // namespace qtls::remote
