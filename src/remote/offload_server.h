// Offload server — the disaggregated end of the remote tier (DESIGN.md
// §13). OffloadServerCore is transport-agnostic (bytes in, bytes out) so
// the chaos tests drive it through in-memory loopbacks; OffloadServer wraps
// it in a real TCP accept loop for examples/offload_server.cpp and the
// socket soak tests.
//
// Budget discipline: the wire carries remaining budget, not an absolute
// deadline (no shared clock). The server REFUSES — never executes — any op
// whose budget is exhausted by the server's own queueing delay, so an op
// that already missed its deadline costs the service nothing but a parse.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/provider.h"
#include "net/socket_transport.h"
#include "remote/wire.h"

namespace qtls::remote {

class OffloadServerCore {
 public:
  struct Config {
    size_t max_frame = kMaxFrameBytes;
    uint64_t drbg_seed = 0x72656d6f;  // 'remo'
    // Modeled queueing delay charged against each op's budget before
    // execution. The single-threaded loop services frames as they arrive,
    // so the production default is 0; chaos tests raise it to prove the
    // refusal path.
    uint64_t queue_delay_ns = 0;
  };

  struct Stats {
    uint64_t frames_rx = 0;
    uint64_t ops_rx = 0;
    uint64_t ops_ok = 0;
    uint64_t compute_errors = 0;
    uint64_t refused_expired = 0;  // kBudgetExhausted refusals, never run
    uint64_t bad_requests = 0;
    uint64_t bytes_rx = 0;
    uint64_t bytes_tx = 0;
  };

  OffloadServerCore();
  explicit OffloadServerCore(Config cfg);

  // Feed raw stream bytes; response frames accumulate in output(). A
  // non-ok return means the stream is poisoned and the connection must
  // close.
  Status on_bytes(BytesView data);

  // Pending response bytes; the owner transmits and consume()s.
  const Bytes& output() const { return out_; }
  void consume(size_t n);

  const Stats& stats() const { return stats_; }
  void set_queue_delay_ns(uint64_t ns) { cfg_.queue_delay_ns = ns; }

 private:
  RemoteOpResponse execute(const RemoteOpRequest& req);

  Config cfg_;
  FrameDecoder decoder_;
  engine::SoftwareProvider provider_;
  Bytes out_;
  Stats stats_;
};

// Single-threaded TCP server: poll()-driven accept + per-connection core.
// run_once() services one poll round; serve() loops until *stop.
class OffloadServer {
 public:
  explicit OffloadServer(
      OffloadServerCore::Config cfg = OffloadServerCore::Config());
  ~OffloadServer();

  Status start(uint16_t port);  // 0 = ephemeral; query with port()
  uint16_t port() const { return listener_.port(); }

  // One poll round (accept + read/execute/write); returns ops serviced.
  size_t run_once(int timeout_ms = 50);
  void serve(const std::atomic<bool>& stop);

  size_t connections() const { return conns_.size(); }
  OffloadServerCore::Stats total_stats() const;

 private:
  struct Conn {
    std::unique_ptr<net::SocketTransport> transport;
    std::unique_ptr<OffloadServerCore> core;
  };

  OffloadServerCore::Config cfg_;
  net::TcpListener listener_;
  std::vector<Conn> conns_;
  OffloadServerCore::Stats closed_stats_;  // carried over from dead conns
};

}  // namespace qtls::remote
