// RemoteChannel — client side of the remote-offload tier (DESIGN.md §13).
//
// One channel multiplexes a worker's remote ops over a single Transport.
// submit() queues; flush() rewrites each op's absolute deadline into the
// wire's remaining-budget field, moves the batch inflight, and serializes
// ONE frame (the batch-RPC amortization — N ops pay one RTT). pump()
// drives non-blocking TX/RX, dispatches responses, expires inflight ops
// past their deadline, and auto-flushes when the coalescing window for the
// oldest queued op has elapsed.
//
// Threading: every public method takes the channel mutex; completions are
// always invoked OUTSIDE the lock, so callers may re-enter submit() from a
// completion. Conservation invariant (asserted by the chaos suite):
//   submitted == completed + expired + failed   (+ still-pending)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "remote/wire.h"
#include "tls/transport.h"

namespace qtls::remote {

struct RemoteChannelConfig {
  size_t max_batch = 32;            // flush as soon as this many ops queue
  uint64_t coalesce_window_us = 50; // flush when the oldest op is this stale
  size_t max_frame = kMaxFrameBytes;
};

struct RemoteChannelStats {
  uint64_t submitted = 0;  // accepted by submit()
  uint64_t completed = 0;  // server responded (any wire status)
  uint64_t expired = 0;    // client-side deadline expiry (pre- or post-send)
  uint64_t failed = 0;     // channel died with the op pending
  uint64_t batches = 0;    // frames sent
  uint64_t max_batch = 0;  // largest batch in one frame
  uint64_t frames_rx = 0;
  uint64_t bytes_tx = 0;
  uint64_t bytes_rx = 0;
  uint64_t dropped_late = 0;  // responses that arrived after local expiry
};

class RemoteChannel : public RemoteBackend {
 public:
  RemoteChannel(std::unique_ptr<tls::Transport> transport,
                RemoteChannelConfig cfg = {});
  ~RemoteChannel() override;

  bool alive() const override;
  bool submit(RemoteOp op, Bytes body, uint64_t deadline_ns,
              Completion done) override;
  void flush() override;
  size_t pump() override;
  std::string stats_json() const override;

  RemoteChannelStats stats() const;
  size_t queued() const;
  size_t inflight() const;

  // Test hooks. set_clock replaces the steady ns clock (virtual-time chaos
  // tests); kill() simulates abrupt transport death from the client side.
  void set_clock(std::function<uint64_t()> now_ns);
  void kill();

 private:
  struct QueuedOp {
    uint64_t request_id = 0;
    RemoteOp op = RemoteOp::kPrfTls12;
    uint64_t deadline_ns = 0;
    uint64_t queued_at_ns = 0;
    Bytes body;
    Completion done;
  };
  struct InflightOp {
    uint64_t deadline_ns = 0;
    Completion done;
  };
  struct Fired {
    Completion done;
    RemoteStatus status;
    Bytes payload;
  };

  uint64_t now_ns_locked() const;
  // Each helper collects completions into *fired; the caller invokes them
  // after dropping the lock.
  void flush_locked(std::vector<Fired>* fired);
  void drive_tx_locked(std::vector<Fired>* fired);
  void drive_rx_locked(std::vector<Fired>* fired);
  void sweep_expired_locked(std::vector<Fired>* fired);
  void die_locked(std::vector<Fired>* fired);
  static size_t dispatch(std::vector<Fired>* fired);

  mutable std::mutex mu_;
  std::unique_ptr<tls::Transport> transport_;
  RemoteChannelConfig cfg_;
  std::function<uint64_t()> now_ns_;
  bool alive_ = true;
  uint64_t next_request_id_ = 1;
  uint64_t next_batch_id_ = 1;
  std::deque<QueuedOp> queue_;
  std::unordered_map<uint64_t, InflightOp> inflight_;
  Bytes tx_buf_;       // serialized frames not yet accepted by the transport
  size_t tx_cursor_ = 0;
  FrameDecoder decoder_;
  RemoteChannelStats stats_;
};

}  // namespace qtls::remote
