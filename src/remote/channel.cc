#include "remote/channel.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

namespace qtls::remote {

namespace {
uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

RemoteChannel::RemoteChannel(std::unique_ptr<tls::Transport> transport,
                             RemoteChannelConfig cfg)
    : transport_(std::move(transport)),
      cfg_(cfg),
      now_ns_(steady_now_ns),
      decoder_(cfg.max_frame) {}

RemoteChannel::~RemoteChannel() {
  std::vector<Fired> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (alive_) die_locked(&fired);
  }
  dispatch(&fired);
}

uint64_t RemoteChannel::now_ns_locked() const { return now_ns_(); }

bool RemoteChannel::alive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alive_;
}

void RemoteChannel::set_clock(std::function<uint64_t()> now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ns_ = std::move(now_ns);
}

void RemoteChannel::kill() {
  std::vector<Fired> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (alive_) die_locked(&fired);
  }
  dispatch(&fired);
}

bool RemoteChannel::submit(RemoteOp op, Bytes body, uint64_t deadline_ns,
                           Completion done) {
  std::vector<Fired> fired;
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (alive_) {
      QueuedOp q;
      q.request_id = next_request_id_++;
      q.op = op;
      q.deadline_ns = deadline_ns;
      q.queued_at_ns = now_ns_locked();
      q.body = std::move(body);
      q.done = std::move(done);
      queue_.push_back(std::move(q));
      ++stats_.submitted;
      accepted = true;
      if (queue_.size() >= cfg_.max_batch) flush_locked(&fired);
    }
  }
  dispatch(&fired);
  return accepted;
}

void RemoteChannel::flush() {
  std::vector<Fired> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (alive_) flush_locked(&fired);
  }
  dispatch(&fired);
}

void RemoteChannel::flush_locked(std::vector<Fired>* fired) {
  if (queue_.empty()) return;
  const uint64_t now = now_ns_locked();
  std::vector<RemoteOpRequest> batch;
  batch.reserve(queue_.size());
  for (QueuedOp& q : queue_) {
    // Deadline rewrite: absolute steady-clock ns -> remaining budget_us.
    // An op whose budget is already gone expires here and is never sent.
    uint32_t budget_us = 0;
    if (q.deadline_ns != 0) {
      if (q.deadline_ns <= now) {
        ++stats_.expired;
        fired->push_back(
            {std::move(q.done), RemoteStatus::kDeadlineExpired, {}});
        continue;
      }
      const uint64_t remaining_us = (q.deadline_ns - now) / 1000;
      budget_us = remaining_us == 0
                      ? 1
                      : static_cast<uint32_t>(
                            std::min<uint64_t>(remaining_us, UINT32_MAX));
    }
    RemoteOpRequest req;
    req.request_id = q.request_id;
    req.op = q.op;
    req.budget_us = budget_us;
    req.body = std::move(q.body);
    batch.push_back(std::move(req));
    inflight_.emplace(q.request_id,
                      InflightOp{q.deadline_ns, std::move(q.done)});
  }
  queue_.clear();
  if (batch.empty()) return;
  encode_request_frame(next_batch_id_++, batch, &tx_buf_);
  ++stats_.batches;
  stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
  drive_tx_locked(fired);
}

void RemoteChannel::drive_tx_locked(std::vector<Fired>* fired) {
  while (tx_cursor_ < tx_buf_.size()) {
    const tls::IoResult r = transport_->write(tx_buf_.data() + tx_cursor_,
                                              tx_buf_.size() - tx_cursor_);
    if (r.status == tls::IoStatus::kOk) {
      tx_cursor_ += r.bytes;
      stats_.bytes_tx += r.bytes;
      continue;
    }
    if (r.status == tls::IoStatus::kWouldBlock) return;
    die_locked(fired);
    return;
  }
  tx_buf_.clear();
  tx_cursor_ = 0;
}

void RemoteChannel::drive_rx_locked(std::vector<Fired>* fired) {
  uint8_t buf[4096];
  for (;;) {
    const tls::IoResult r = transport_->read(buf, sizeof(buf));
    if (r.status == tls::IoStatus::kWouldBlock) break;
    if (r.status != tls::IoStatus::kOk || r.bytes == 0) {
      die_locked(fired);
      return;
    }
    stats_.bytes_rx += r.bytes;
    if (!decoder_.feed(BytesView(buf, r.bytes)).is_ok()) {
      // Malformed stream: there is no resync point, tear it down.
      die_locked(fired);
      return;
    }
  }
  Frame frame;
  while (decoder_.next(&frame)) {
    ++stats_.frames_rx;
    if (frame.type != FrameType::kBatchResponse) continue;
    for (RemoteOpResponse& rsp : frame.responses) {
      auto it = inflight_.find(rsp.request_id);
      if (it == inflight_.end()) {
        // Response for an op we already expired (or a duplicate frame): the
        // caller's completion fired exactly once already; count and drop.
        ++stats_.dropped_late;
        continue;
      }
      ++stats_.completed;
      fired->push_back(
          {std::move(it->second.done), rsp.status, std::move(rsp.body)});
      inflight_.erase(it);
    }
  }
}

void RemoteChannel::sweep_expired_locked(std::vector<Fired>* fired) {
  const uint64_t now = now_ns_locked();
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second.deadline_ns != 0 && it->second.deadline_ns <= now) {
      ++stats_.expired;
      fired->push_back(
          {std::move(it->second.done), RemoteStatus::kDeadlineExpired, {}});
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
}

void RemoteChannel::die_locked(std::vector<Fired>* fired) {
  alive_ = false;
  for (auto& [id, op] : inflight_) {
    ++stats_.failed;
    fired->push_back({std::move(op.done), RemoteStatus::kChannelDown, {}});
  }
  inflight_.clear();
  for (QueuedOp& q : queue_) {
    ++stats_.failed;
    fired->push_back({std::move(q.done), RemoteStatus::kChannelDown, {}});
  }
  queue_.clear();
  tx_buf_.clear();
  tx_cursor_ = 0;
}

size_t RemoteChannel::dispatch(std::vector<Fired>* fired) {
  for (Fired& f : *fired) {
    if (f.done) f.done(f.status, f.payload);
  }
  const size_t n = fired->size();
  fired->clear();
  return n;
}

size_t RemoteChannel::pump() {
  std::vector<Fired> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (alive_) {
      drive_tx_locked(&fired);
      if (alive_) drive_rx_locked(&fired);
      if (alive_) sweep_expired_locked(&fired);
      // Coalescing window: flush once the oldest queued op has waited long
      // enough that batching further would cost more than it amortizes.
      if (alive_ && !queue_.empty()) {
        const uint64_t age_ns = now_ns_locked() - queue_.front().queued_at_ns;
        if (age_ns >= cfg_.coalesce_window_us * 1000) flush_locked(&fired);
      }
    }
  }
  return dispatch(&fired);
}

RemoteChannelStats RemoteChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t RemoteChannel::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t RemoteChannel::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size();
}

std::string RemoteChannel::stats_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"alive\":" << (alive_ ? "true" : "false")
     << ",\"submitted\":" << stats_.submitted
     << ",\"completed\":" << stats_.completed
     << ",\"expired\":" << stats_.expired << ",\"failed\":" << stats_.failed
     << ",\"batches\":" << stats_.batches
     << ",\"max_batch\":" << stats_.max_batch
     << ",\"frames_rx\":" << stats_.frames_rx
     << ",\"bytes_tx\":" << stats_.bytes_tx
     << ",\"bytes_rx\":" << stats_.bytes_rx
     << ",\"dropped_late\":" << stats_.dropped_late
     << ",\"queued\":" << queue_.size()
     << ",\"inflight\":" << inflight_.size() << "}";
  return os.str();
}

}  // namespace qtls::remote
