// Remote-offload wire protocol (DESIGN.md §13) — the batch RPC carrying
// crypto op batches between the engine's remote tier and the standalone
// offload server, plus the RemoteBackend seam the engine submits through.
//
// Framing: length-prefixed binary frames over any tls::Transport.
//
//   frame   := u32 payload_len | payload           (len excludes the prefix)
//   payload := u8 magic 'Q' | u8 version | u8 type | u64 batch_id
//              | u16 op_count | op*
//   req op  := u64 request_id | u8 op | u32 budget_us | u32 body_len | body
//   rsp op  := u64 request_id | u8 status          | u32 body_len | body
//
// Deadline propagation: the client never puts an absolute clock on the wire
// (the two hosts share no clock). At serialization time the channel rewrites
// each op's absolute steady-clock deadline into `budget_us` — the REMAINING
// budget when the frame left the client. budget_us == 0 means unbounded; an
// op whose budget is already gone at flush time expires client-side and is
// never sent. The server refuses (kBudgetExhausted, never executes) any op
// whose budget is exhausted by its own queueing delay.
//
// Parser hardening: frames are bounded by kMaxFrameBytes and every field is
// length-checked; one malformed frame poisons the decoder and the owner
// must tear the connection down (there is no resync point in a corrupted
// length-prefixed stream).
//
// This header depends on crypto types only (never on engine/), so the QAT
// engine can link the wire codec without a cycle through the offload server
// (which needs the engine's SoftwareProvider).
#pragma once

#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/ec.h"
#include "crypto/hash.h"
#include "crypto/rsa.h"

namespace qtls::remote {

constexpr uint8_t kWireMagic = 0x51;  // 'Q'
constexpr uint8_t kWireVersion = 1;
// Hard frame bound: a full coalescing window of 16 KB records fits with
// room; anything larger is a protocol violation, not a big batch.
constexpr size_t kMaxFrameBytes = 4u << 20;

enum class FrameType : uint8_t { kBatchRequest = 1, kBatchResponse = 2 };

// Every provider op the engine can route to the remote tier.
enum class RemoteOp : uint8_t {
  kRsaSign = 1,
  kRsaDecrypt = 2,
  kEcdheKeygen = 3,
  kEcdheDerive = 4,
  kEcdsaSign = 5,
  kPrfTls12 = 6,
  kCipherSeal = 7,
  kCipherOpen = 8,
  kAeadSeal = 9,
  kAeadOpen = 10,
};

// Per-op completion status. Values < 100 travel on the wire (server ->
// client); values >= 100 are client-local terminals the channel synthesizes.
enum class RemoteStatus : uint8_t {
  kOk = 0,
  kComputeError = 1,     // executed; deterministic input failure. The body
                         // carries u8 status-code + message (decode with
                         // decode_error_body) so the caller sees the same
                         // Status a local compute would have produced.
  kBudgetExhausted = 2,  // budget gone before service; NEVER executed
  kBadRequest = 3,       // unparseable op / unknown kind
  // --- client-local (never serialized) ---------------------------------
  kDeadlineExpired = 100,  // client-side expiry before any response
  kChannelDown = 101,      // transport died with the op pending
};

const char* remote_status_name(RemoteStatus s);

struct RemoteOpRequest {
  uint64_t request_id = 0;
  RemoteOp op = RemoteOp::kPrfTls12;
  uint32_t budget_us = 0;  // remaining deadline budget at send; 0 = none
  Bytes body;
};

struct RemoteOpResponse {
  uint64_t request_id = 0;
  RemoteStatus status = RemoteStatus::kBadRequest;
  Bytes body;
};

struct Frame {
  FrameType type = FrameType::kBatchRequest;
  uint64_t batch_id = 0;
  std::vector<RemoteOpRequest> requests;    // kBatchRequest
  std::vector<RemoteOpResponse> responses;  // kBatchResponse
};

// Appends one complete frame (length prefix included) to *out.
void encode_request_frame(uint64_t batch_id,
                          std::span<const RemoteOpRequest> ops, Bytes* out);
void encode_response_frame(uint64_t batch_id,
                           std::span<const RemoteOpResponse> ops, Bytes* out);

// Incremental frame decoder: feed() accepts arbitrary chunks (a frame
// bisected at any byte reassembles), next() pops complete frames in order.
// A bad magic/version, an oversized length, or a malformed op list poisons
// the decoder permanently; the connection owner must close.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  Status feed(BytesView data);
  bool next(Frame* out);
  bool poisoned() const { return poisoned_; }
  size_t buffered() const { return buf_.size(); }
  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  Status poison(const std::string& why);

  size_t max_frame_;
  Bytes buf_;
  std::deque<Frame> ready_;
  bool poisoned_ = false;
  uint64_t frames_decoded_ = 0;
};

// The seam the engine submits through. RemoteChannel is the production
// implementation (remote/channel.h); tests substitute loopback/chaos fakes.
// The contract mirrors the QAT ring discipline: submit() queues, flush()
// serializes the queued batch into one frame (the batch-RPC amortization),
// pump() drives IO + client-side expiry and fires completions.
class RemoteBackend {
 public:
  using Completion = std::function<void(RemoteStatus, BytesView payload)>;

  virtual ~RemoteBackend() = default;

  virtual bool alive() const = 0;

  // Queue an op with an ABSOLUTE steady-clock deadline (ns; 0 = none); the
  // implementation rewrites it to remaining budget_us at serialization.
  // Returns false when the channel is dead (completion never fires).
  // Otherwise the completion fires exactly once — from pump(), or inline
  // from a flush that fails or expires the op before it is sent.
  virtual bool submit(RemoteOp op, Bytes body, uint64_t deadline_ns,
                      Completion done) = 0;

  // Serialize everything queued into one frame and start transmitting.
  virtual void flush() = 0;

  // Drive IO + expiry; returns the number of completions fired.
  virtual size_t pump() = 0;

  virtual std::string stats_json() const { return "{}"; }
};

// --- op body codecs --------------------------------------------------------
// Client-side encoders build the body the server's executor parses. Keys go
// by value: the remote tier is a disaggregated HSM-shaped service, so each
// op is self-contained (no server-side key registry in this protocol rev).
// DRBG-consuming ops (keygen, ECDSA nonce) carry an explicit seed so the
// remote result is bit-identical to the local engine-thread compute closure
// for the same seed — the parity tests depend on it.

Bytes encode_rsa_op(const RsaPrivateKey& key, BytesView data);  // sign|decrypt
Bytes encode_ecdhe_keygen(CurveId curve, uint64_t seed);
Bytes encode_ecdhe_derive(CurveId curve, BytesView priv, BytesView pub_point,
                          BytesView peer_point);
Bytes encode_ecdsa_sign(CurveId curve, BytesView priv_be, BytesView digest,
                        uint64_t seed);
Bytes encode_prf_tls12(HashAlg alg, BytesView secret, const std::string& label,
                       BytesView seed, uint32_t out_len);
Bytes encode_cipher_seal(const CbcHmacKeys& keys, uint64_t seq,
                         BytesView header, BytesView iv, BytesView fragment);
Bytes encode_cipher_open(const CbcHmacKeys& keys, uint64_t seq,
                         BytesView header_without_len, BytesView iv,
                         BytesView ciphertext);
Bytes encode_aead_op(BytesView key, BytesView nonce, BytesView aad,
                     BytesView text);  // seal|open share the shape

// Keygen response body: u8 curve | lv priv | lv pub_point. Kept wire-local
// (no engine::KeyShare here) so the codec stays engine-free.
struct WireKeyShare {
  uint8_t curve = 0;
  Bytes priv;
  Bytes pub_point;
};
void encode_keyshare_body(const WireKeyShare& share, Bytes* out);
Result<WireKeyShare> decode_keyshare_body(BytesView body);

// kComputeError bodies: u8 qtls::Code | message, so the client reconstructs
// the exact Status a local compute would have returned.
void encode_error_body(const Status& st, Bytes* out);
Status decode_error_body(BytesView body);

// Length-value helpers shared by the codecs (u32 length + bytes).
void append_lv(Bytes& dst, BytesView v);
Bytes read_lv(ByteReader& r);

}  // namespace qtls::remote
