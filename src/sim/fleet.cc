#include "sim/fleet.h"

#include <algorithm>
#include <cmath>

namespace qtls::sim {

// The per-connection record the fleet keeps while a connection is
// established: which server terminated it and the ticket that server
// minted. Slab-allocated; at a hundred thousand live connections the pool
// is the data structure, not an optimization.
struct FleetSim::FleetConn {
  size_t server = 0;
  Bytes ticket;
};

FleetSim::FleetSim(FleetConfig config)
    : config_(std::move(config)),
      pool_("sim.fleet_conn"),
      ticket_iv_rng_(HashAlg::kSha256, to_bytes("fleet-ticket-iv")),
      rng_(config_.rng_seed ? config_.rng_seed : 1) {
  // Every server's ring derives from the SAME seed — that is the whole
  // scheme: epoch keys are a pure function of (seed, clock), so a ticket
  // sealed anywhere unseals anywhere with zero key distribution.
  Bytes seed(8);
  for (int i = 0; i < 8; ++i)
    seed[i] = static_cast<uint8_t>(config_.fleet_seed >> (8 * i));
  servers_.resize(config_.servers ? config_.servers : 1);
  for (auto& s : servers_)
    s.ring = std::make_unique<tls::TicketKeyRing>(
        seed, config_.ticket_rotate_interval_ms, config_.ticket_accept_epochs,
        config_.ticket_lifetime_ms);
}

FleetSim::~FleetSim() = default;

uint64_t FleetSim::next_u64() {
  // xorshift64* — deterministic, no global entropy (DES reproducibility).
  rng_ ^= rng_ >> 12;
  rng_ ^= rng_ << 25;
  rng_ ^= rng_ >> 27;
  return rng_ * 0x2545F4914F6CDD1DULL;
}

uint64_t FleetSim::exp_sample(uint64_t mean) {
  const double u =
      static_cast<double>((next_u64() >> 11) + 1) / 9007199254740992.0;
  double v = -static_cast<double>(mean) * std::log(u);
  // Cap the tail at 3x the mean: an unbounded dwell + reconnect delay could
  // push a ticket past the epoch accept window, turning the hit-rate gate
  // into a coin flip on the RNG seed.
  v = std::min(v, 3.0 * static_cast<double>(mean));
  return v < 1.0 ? 1 : static_cast<uint64_t>(v);
}

void FleetSim::arrival_tick() {
  if (launched_ >= config_.connections) return;
  on_connect({}, 0);
  if (launched_ < config_.connections)
    sim_.schedule_after(exp_sample(config_.mean_interarrival_us) * kUs,
                        [this] { arrival_tick(); });
}

void FleetSim::on_connect(Bytes ticket, size_t sealed_by) {
  ++launched_;
  const size_t target = next_u64() % servers_.size();
  Server& srv = servers_[target];

  bool resumed = false;
  if (!ticket.empty()) {
    ++result_.resumption_attempts;
    auto r = srv.ring->unseal(ticket, now_ms());
    if (r.is_ok()) {
      resumed = true;
      ++result_.resumption_hits;
      if (!r.value().current) ++result_.old_epoch_hits;
      if (target != sealed_by) ++result_.cross_fleet_hits;
    } else {
      ++result_.resumption_misses;
    }
  }
  if (!resumed) ++result_.full_handshakes;

  FleetConn* conn = pool_.create();
  conn->server = target;
  // Mint this connection's resumption ticket through the REAL seal path
  // (serialize + AES-CBC + HMAC), so the bench's hit rate measures the
  // actual ticket plane, not a lookup table.
  tls::SessionState state;
  state.created_at_ms = now_ms();
  state.master_secret.resize(48);
  for (size_t i = 0; i < 48; i += 8) {
    const uint64_t w = next_u64();
    for (size_t j = 0; j < 8; ++j)
      state.master_secret[i + j] = static_cast<uint8_t>(w >> (8 * j));
  }
  conn->ticket = srv.ring->seal(state, now_ms(), ticket_iv_rng_);
  ++srv.established;

  ++live_;
  result_.peak_live = std::max(result_.peak_live, live_);
  sim_.schedule_after(exp_sample(config_.mean_lifetime_ms) * kMs,
                      [this, conn] { on_close(conn); });
}

void FleetSim::on_close(FleetConn* conn) {
  ++result_.completed;
  result_.sim_duration = sim_.now();
  const size_t sealed_by = conn->server;
  const bool reconnect =
      static_cast<double>(next_u64() >> 11) / 9007199254740992.0 <
      config_.reconnect_fraction;
  Bytes ticket;
  if (reconnect) ticket = std::move(conn->ticket);
  --live_;
  pool_.destroy(conn);  // slot recycled; conn is dead past this line
  if (reconnect)
    sim_.schedule_after(
        exp_sample(config_.mean_reconnect_delay_ms) * kMs,
        [this, t = std::move(ticket), sealed_by]() mutable {
          // The connection budget is global: a reconnect landing after the
          // last fresh arrival still counts against it, so the run ends at
          // exactly `connections` started.
          if (launched_ < config_.connections)
            on_connect(std::move(t), sealed_by);
        });
}

FleetResult FleetSim::run() {
  sim_.schedule_at(0, [this] { arrival_tick(); });
  while (!sim_.empty()) sim_.run_until(sim_.now() + 3'600 * kSec);

  result_.slab_live_at_end = pool_.live();
  const auto st = pool_.stats();
  result_.slab_allocs = st.total_allocs;
  result_.slab_frees = st.total_frees;
  result_.peak_idle_bytes = result_.peak_live * config_.idle_bytes_per_conn;
  return result_;
}

}  // namespace qtls::sim
