#include "sim/system.h"

#include <cassert>

#include "common/rng.h"

namespace qtls::sim {

const char* config_name(Config c) {
  switch (c) {
    case Config::kSW: return "SW";
    case Config::kQatS: return "QAT+S";
    case Config::kQatA: return "QAT+A";
    case Config::kQatAH: return "QAT+AH";
    case Config::kQtls: return "QTLS";
  }
  return "?";
}

ConfigKnobs resolve_config(const RunParams& p) {
  ConfigKnobs k;
  switch (p.config) {
    case Config::kSW:
      k.offload = false;
      break;
    case Config::kQatS:
      k.offload = true;
      k.async = false;
      k.poll = PollMode::kBusy;
      break;
    case Config::kQatA:
      k.offload = true;
      k.async = true;
      k.poll = PollMode::kTimer;
      k.notify = NotifyMode::kFd;
      break;
    case Config::kQatAH:
      k.offload = true;
      k.async = true;
      k.poll = PollMode::kHeuristic;
      k.notify = NotifyMode::kFd;
      break;
    case Config::kQtls:
      k.offload = true;
      k.async = true;
      k.poll = PollMode::kHeuristic;
      k.notify = NotifyMode::kKernelBypass;
      break;
  }
  if (p.poll_override.has_value() && k.offload && k.async)
    k.poll = *p.poll_override;
  if (p.notify_override.has_value() && k.offload && k.async)
    k.notify = *p.notify_override;
  return k;
}

namespace {

struct Flight {
  SimTime pre_cpu = 0;
  std::vector<SOp> ops;
  SimTime post_cpu = 0;
  bool rtt_after = false;
};

SOp ecdh_op(qtls::CurveId curve) {
  switch (curve) {
    case qtls::CurveId::kP256: return SOp::kEcdhP256;
    case qtls::CurveId::kP384: return SOp::kEcdhP384;
    case qtls::CurveId::kB283:
    case qtls::CurveId::kK283: return SOp::kEcdhB283;
    case qtls::CurveId::kB409:
    case qtls::CurveId::kK409: return SOp::kEcdhB409;
  }
  return SOp::kEcdhP256;
}

SOp ecdsa_op(qtls::CurveId curve) {
  // ECDSA stays on the prime curves (DESIGN.md §6): P-384 when the ECDHE
  // group is P-384, else the Montgomery-friendly P-256 path.
  return curve == qtls::CurveId::kP384 ? SOp::kEcdsaP384 : SOp::kEcdsaP256;
}

std::vector<Flight> make_handshake(const RunParams& p, bool resumed) {
  const CostModel& c = p.costs;
  const tls::CipherSuiteInfo& info = tls::cipher_suite_info(p.suite);
  std::vector<Flight> flights;

  if (info.tls13) {
    // CH(+share) -> [EC keygen, EC derive, RSA sign] + key schedule; then
    // the client Finished flight. One fewer round trip than TLS 1.2.
    Flight f1;
    f1.pre_cpu = c.hs_accept_cpu;
    f1.ops = {ecdh_op(p.curve), ecdh_op(p.curve), SOp::kRsaPriv};
    f1.post_cpu = c.hs_flight_cpu + c.tls13_kdf_cpu;
    f1.rtt_after = true;
    Flight f2;
    f2.pre_cpu = c.tls13_client_fin_cpu;
    f2.post_cpu = 10 * kUs;
    flights = {f1, f2};
    return flights;
  }

  if (resumed) {
    // Abbreviated handshake: PRF only (§5.3) — key expansion + server
    // Finished, then the client Finished verification.
    Flight f1;
    f1.pre_cpu = c.hs_accept_cpu;
    f1.ops = {SOp::kPrf, SOp::kPrf};
    f1.post_cpu = c.hs_flight_cpu;
    f1.rtt_after = true;
    Flight f2;
    f2.pre_cpu = 15 * kUs;
    f2.ops = {SOp::kPrf};
    f2.post_cpu = 10 * kUs;
    flights = {f1, f2};
    return flights;
  }

  Flight f1;
  f1.pre_cpu = c.hs_accept_cpu;
  Flight f2;
  f2.pre_cpu = c.hs_finish_pre_cpu;
  f2.post_cpu = c.hs_finish_post_cpu;
  switch (info.kx) {
    case tls::KeyExchange::kRsa:
      // Server flight is certificate only; all crypto happens on the
      // client's combined CKE/CCS/Finished flight.
      f2.ops = {SOp::kRsaPriv, SOp::kPrf, SOp::kPrf, SOp::kPrf, SOp::kPrf};
      break;
    case tls::KeyExchange::kEcdheRsa:
      f1.ops = {ecdh_op(p.curve), SOp::kRsaPriv};
      f2.ops = {ecdh_op(p.curve), SOp::kPrf, SOp::kPrf, SOp::kPrf, SOp::kPrf};
      break;
    case tls::KeyExchange::kEcdheEcdsa:
      f1.ops = {ecdh_op(p.curve), ecdsa_op(p.curve)};
      f2.ops = {ecdh_op(p.curve), SOp::kPrf, SOp::kPrf, SOp::kPrf, SOp::kPrf};
      break;
  }
  f1.post_cpu = c.hs_flight_cpu;
  f1.rtt_after = true;
  flights = {f1, f2};
  return flights;
}

class SimSystem {
 public:
  explicit SimSystem(const RunParams& p)
      : p_(p),
        knobs_(resolve_config(p)),
        rng_(p.seed),
        device_(&sim_, &p_.costs, p.endpoints, p.engines_per_endpoint),
        nic_(&sim_) {
    // Timer polling thread pinned to the worker's core taxes every cycle
    // the worker spends (§5.6): tick cost per interval.
    double tax = 1.0;
    if (knobs_.offload && knobs_.async && knobs_.poll == PollMode::kTimer) {
      const double share = static_cast<double>(p_.costs.timer_tick_cpu) /
                           static_cast<double>(p_.timer_interval);
      tax = 1.0 / (1.0 - std::min(0.8, share));
    }
    workers_.resize(static_cast<size_t>(p.workers));
    for (auto& w : workers_) {
      w.cpu = std::make_unique<SimResource>(&sim_);
      w.instance = device_.allocate_instance(p.ring_capacity);
      w.tax = tax;
    }
  }

  RunResult run() {
    const SimTime end = p_.warmup + p_.duration;
    // Stagger client starts over the first 10 ms.
    for (int cl = 0; cl < p_.clients; ++cl) {
      const SimTime at = rng_.uniform(10 * kMs);
      sim_.schedule_at(at, [this, cl] { start_client(cl); });
    }
    if (knobs_.offload && knobs_.async && knobs_.poll == PollMode::kTimer) {
      for (size_t w = 0; w < workers_.size(); ++w) schedule_tick(static_cast<int>(w));
    }
    sim_.run_until(end);

    RunResult out = result_;
    const double secs = static_cast<double>(p_.duration) / kSec;
    out.cps = static_cast<double>(out.handshakes) / secs;
    out.requests_per_sec = static_cast<double>(requests_) / secs;
    out.throughput_gbps =
        static_cast<double>(payload_bytes_) * 8.0 / (secs * 1e9);
    out.bytes_copied_per_byte =
        out.bytes_sent != 0 ? static_cast<double>(out.bytes_copied) /
                                  static_cast<double>(out.bytes_sent)
                            : 0.0;
    double util_sum = 0;
    for (auto& w : workers_)
      util_sum += std::min(1.0, static_cast<double>(w.cpu->total_busy()) /
                                    static_cast<double>(end));
    out.cpu_utilization = util_sum / static_cast<double>(workers_.size());
    out.qat_utilization = device_.completed_ops() > 0
                              ? endpoint_utilization(end)
                              : 0.0;
    return out;
  }

 private:
  struct WorkerState {
    std::unique_ptr<SimResource> cpu;
    SimQatInstance* instance = nullptr;
    size_t active = 0;
    double tax = 1.0;
    bool poll_scheduled = false;
  };

  struct Conn {
    int worker = 0;
    int client = 0;
    SimTime born = 0;
    std::vector<Flight> flights;
    size_t flight = 0;
    size_t op = 0;
    bool resumed = false;
    // transfer state
    std::vector<size_t> records;
    size_t record = 0;
    SimTime request_start = 0;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  bool in_window() const { return sim_.now() >= p_.warmup; }

  // Network delays carry +/-20% jitter: identical deterministic service
  // times otherwise lock the closed-loop clients into convoys that alias
  // with the measurement window.
  SimTime jittered_rtt() {
    return static_cast<SimTime>(static_cast<double>(p_.costs.rtt) *
                                (0.8 + 0.4 * rng_.uniform01()));
  }

  void wexec(int w, SimTime cost, std::function<void()> fn) {
    WorkerState& ws = workers_[static_cast<size_t>(w)];
    ws.cpu->exec(static_cast<SimTime>(static_cast<double>(cost) * ws.tax),
                 std::move(fn));
  }

  double endpoint_utilization(SimTime) const {
    // Aggregate engine-time over capacity, derived from completed op count
    // is imprecise; report via the first endpoint's accumulator instead.
    return 0.0;  // refined by utilization probes in benches when needed
  }

  // ------------------------------------------------------------ clients --
  void start_client(int client_id) {
    if (p_.transfer_mode) {
      start_connection(client_id, /*first=*/true);
    } else {
      start_connection(client_id, /*first=*/!client_has_session_[static_cast<size_t>(client_id) % client_has_session_.size()]);
    }
  }

  void start_connection(int client_id, bool first) {
    auto conn = std::make_shared<Conn>();
    conn->client = client_id;
    conn->worker = next_worker_++ % p_.workers;
    conn->born = sim_.now();
    const bool can_resume = !first && !p_.transfer_mode;
    conn->resumed =
        can_resume && rng_.uniform01() >= p_.full_handshake_ratio;
    conn->flights = make_handshake(p_, conn->resumed);
    ++workers_[static_cast<size_t>(conn->worker)].active;
    // TCP connect: the ClientHello reaches the worker one RTT after the
    // client initiates.
    sim_.schedule_after(jittered_rtt(), [this, conn] { begin_flight(conn); });
  }

  // --------------------------------------------------------- handshakes --
  void begin_flight(ConnPtr conn) {
    const Flight& f = conn->flights[conn->flight];
    conn->op = 0;
    wexec(conn->worker, f.pre_cpu, [this, conn] { run_ops(conn); });
  }

  void run_ops(ConnPtr conn) {
    const Flight& f = conn->flights[conn->flight];
    if (conn->op >= f.ops.size()) {
      wexec(conn->worker, f.post_cpu, [this, conn] { finish_flight(conn); });
      return;
    }
    const SOp op = f.ops[conn->op];
    ++conn->op;
    run_one_op(conn, op, [this, conn] { run_ops(conn); });
  }

  void finish_flight(ConnPtr conn) {
    const bool more = conn->flight + 1 < conn->flights.size();
    const bool rtt_after = conn->flights[conn->flight].rtt_after;
    if (more) {
      ++conn->flight;
      if (rtt_after) {
        sim_.schedule_after(jittered_rtt(),
                            [this, conn] { begin_flight(conn); });
      } else {
        begin_flight(conn);
      }
      return;
    }
    handshake_complete(conn);
  }

  void handshake_complete(ConnPtr conn) {
    if (in_window()) {
      ++result_.handshakes;
      if (conn->resumed) ++result_.abbreviated;
    }
    client_has_session_[static_cast<size_t>(conn->client) %
                        client_has_session_.size()] = true;

    if (p_.transfer_mode) {
      // Persistent connection: request loop (connection stays alive).
      start_request(conn);
      return;
    }
    if (p_.include_request) {
      conn->records = {100};  // the <100-byte page of §5.5
      conn->record = 0;
      conn->request_start = conn->born;  // latency covers the whole exchange
      sim_.schedule_after(p_.costs.rtt / 2,
                          [this, conn] { process_request(conn); });
      return;
    }
    complete_connection(conn);
  }

  void complete_connection(ConnPtr conn) {
    if (in_window()) {
      const SimTime latency = sim_.now() + p_.costs.rtt / 2 - conn->born;
      result_.latency.record(latency);
    }
    --workers_[static_cast<size_t>(conn->worker)].active;
    heuristic_check(conn->worker);
    const int client = conn->client;
    // s_time closed loop: the client reconnects immediately (the next SYN
    // fires as soon as the close completes).
    sim_.schedule_after(1 * kUs + rng_.uniform(20 * kUs),
                        [this, client] { start_connection(client, false); });
  }

  // ------------------------------------------------------------ requests --
  void start_request(ConnPtr conn) {
    // Client sends a GET; it reaches the worker after rtt/2. Between
    // requests the connection is idle (keepalive) for TC_active purposes.
    --workers_[static_cast<size_t>(conn->worker)].active;
    heuristic_check(conn->worker);
    conn->request_start = sim_.now();
    sim_.schedule_after(p_.costs.rtt / 2, [this, conn] {
      ++workers_[static_cast<size_t>(conn->worker)].active;
      // Build the record plan: full 16 KB fragments + remainder.
      conn->records.clear();
      size_t left = p_.file_bytes;
      while (left > 0) {
        const size_t take = std::min<size_t>(left, 16 * 1024);
        conn->records.push_back(take);
        left -= take;
      }
      conn->record = 0;
      process_request(conn);
    });
  }

  void process_request(ConnPtr conn) {
    wexec(conn->worker, p_.costs.http_request_cpu,
          [this, conn] { next_record(conn); });
  }

  void next_record(ConnPtr conn) {
    if (conn->record >= conn->records.size()) {
      // All records queued on the NIC; the client sees the response rtt/2
      // after the last byte leaves.
      const SimTime tx_done = nic_.busy_until();
      const SimTime done_at = std::max(sim_.now(), tx_done) + p_.costs.rtt / 2;
      sim_.schedule_at(done_at, [this, conn] { finish_request(conn); });
      return;
    }
    const size_t bytes = conn->records[conn->record];
    ++conn->record;
    // Only the QTLS framework runs the iovec-chain plane (DESIGN.md §11);
    // the OpenSSL-based baselines keep the stock coalescing BIO path, as
    // does QTLS itself when legacy_dataplane forces the pre-change plane.
    const bool new_plane =
        p_.config == Config::kQtls && !p_.legacy_dataplane;
    // Records after a request's first ride the batched seal submission:
    // they pay the per-item marshalling cost instead of a full
    // submit/notify/resume round trip.
    const bool batch_rider = new_plane && conn->record > 1;
    const double scale = static_cast<double>(bytes) / (16.0 * 1024.0);
    // TX copy passes: the legacy coalesced plane stages each payload byte
    // three times (entry staging, sealed-record append, coalesce); the
    // iovec-chain plane only pays the entry staging copy.
    const int copy_passes = new_plane ? 1 : 3;
    if (in_window()) {
      result_.bytes_copied += static_cast<uint64_t>(bytes) *
                              static_cast<uint64_t>(copy_passes);
      result_.bytes_sent += bytes;
    }
    // Copy passes, then record protection (one chained-cipher op per
    // record, §5.4), then the kernel send path, then NIC occupancy.
    auto after_cipher = [this, conn, bytes, scale] {
      const SimTime tcp =
          static_cast<SimTime>(static_cast<double>(p_.costs.tcp_per_16k_cpu) * scale);
      wexec(conn->worker, tcp, [this, conn, bytes] {
        const double bits = static_cast<double>(bytes) * 8.0;
        nic_.occupy(static_cast<SimTime>(bits / p_.costs.nic_gbps));
        payload_inflight_ += bytes;
        next_record(conn);
      });
    };
    const SimTime copy_cpu = static_cast<SimTime>(
        static_cast<double>(p_.costs.copy_per_16k_cpu) * scale *
        static_cast<double>(copy_passes));
    wexec(conn->worker, copy_cpu,
          [this, conn, scale, batch_rider,
           after_cipher = std::move(after_cipher)]() mutable {
            run_scaled_cipher(conn, scale, std::move(after_cipher),
                              batch_rider);
          });
  }

  void finish_request(ConnPtr conn) {
    if (in_window()) {
      ++requests_;
      size_t bytes = 0;
      for (size_t b : conn->records) bytes += b;
      payload_bytes_ += bytes;
      result_.latency.record(sim_.now() - conn->request_start);
    }
    if (p_.transfer_mode) {
      start_request(conn);  // ab keeps hammering
    } else {
      complete_connection(conn);
    }
  }

  // ------------------------------------------------------------- crypto --
  void run_one_op(ConnPtr conn, SOp op, std::function<void()> done) {
    const CostModel& c = p_.costs;
    // HKDF-class work never offloads; in this model TLS 1.3 KDF work is a
    // CPU lump in the flight costs, so ops here are always offloadable
    // kinds when offload is on.
    if (!knobs_.offload) {
      wexec(conn->worker, c.sw_cost(op), std::move(done));
      return;
    }
    if (!knobs_.async) {
      run_sync_op(conn, op, std::move(done));
      return;
    }
    run_async_op(conn, op, std::move(done));
  }

  void run_scaled_cipher(ConnPtr conn, double scale,
                         std::function<void()> done,
                         bool batch_rider = false) {
    const CostModel& c = p_.costs;
    if (!knobs_.offload) {
      wexec(conn->worker,
            static_cast<SimTime>(static_cast<double>(c.sw_cipher_16k) * scale),
            std::move(done));
      return;
    }
    // Offloaded cipher: service time scales with the record size.
    if (!knobs_.async) {
      run_sync_op(conn, SOp::kCipher16k, std::move(done), scale);
    } else {
      run_async_op(conn, SOp::kCipher16k, std::move(done), scale,
                   batch_rider);
    }
  }

  void run_sync_op(ConnPtr conn, SOp op, std::function<void()> done,
                   double scale = 1.0) {
    const CostModel& c = p_.costs;
    const int w = conn->worker;
    wexec(w, c.submit_cpu, [this, conn, op, scale, w, done = std::move(done)] {
      SimQatInstance* inst = workers_[static_cast<size_t>(w)].instance;
      const SimTime done_at = inst->submit_blocking(
          op, static_cast<SimTime>(
                  static_cast<double>(p_.costs.qat_service(op)) * scale));
      if (done_at == 0) {
        // Ring full: blocked retry after a short beat.
        if (in_window()) ++result_.submit_retries;
        sim_.schedule_after(5 * kUs, [this, conn, op, scale, done] {
          run_sync_op(conn, op, done, scale);
        });
        return;
      }
      const SimTime wait =
          done_at - sim_.now() +
          (p_.sync_busy_poll ? p_.costs.busy_poll_overhead
                             : p_.costs.sync_block_overhead);
      // Straight offload: the worker core is occupied for the entire wait
      // (Figure 3's blocking).
      wexec(w, wait, done);
    });
  }

  void run_async_op(ConnPtr conn, SOp op, std::function<void()> done,
                    double scale = 1.0, bool batch_rider = false) {
    const CostModel& c = p_.costs;
    const int w = conn->worker;
    auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
    // A batch rider shares its batch leader's ring write and completion
    // round trip; both ends cost only the per-item marshalling.
    const SimTime submit_cost = batch_rider ? c.batch_item_cpu : c.submit_cpu;
    wexec(w, submit_cost,
          [this, conn, op, scale, w, batch_rider, shared_done] {
      SimQatInstance* inst = workers_[static_cast<size_t>(w)].instance;
      const SimTime notify_cpu = knobs_.notify == NotifyMode::kFd
                                     ? p_.costs.notify_fd_cpu
                                     : p_.costs.notify_kb_cpu;
      const SimTime completion_cpu =
          batch_rider ? p_.costs.batch_item_cpu
                      : notify_cpu + p_.costs.resume_cpu;
      const bool ok = inst->submit(
          op,
          static_cast<SimTime>(static_cast<double>(p_.costs.qat_service(op)) *
                               scale),
          [this, w, completion_cpu, shared_done] {
            // Response retrieved by a poll: async event notification +
            // post-processing resume on the worker core (§3.4, §3.1).
            wexec(w, completion_cpu,
                  [this, w, shared_done] {
                    (*shared_done)();
                    heuristic_check(w);
                  });
          });
      if (!ok) {
        if (in_window()) ++result_.submit_retries;
        sim_.schedule_after(
            5 * kUs, [this, conn, op, scale, batch_rider, shared_done] {
              run_async_op_retry(conn, op, scale, batch_rider, shared_done);
            });
        return;
      }
      heuristic_check(w);
    });
  }

  void run_async_op_retry(ConnPtr conn, SOp op, double scale,
                          bool batch_rider,
                          std::shared_ptr<std::function<void()>> shared_done) {
    run_async_op(
        conn, op, [shared_done] { (*shared_done)(); }, scale, batch_rider);
  }

  // -------------------------------------------------------------- polling --
  void heuristic_check(int w) {
    if (!(knobs_.offload && knobs_.async &&
          knobs_.poll == PollMode::kHeuristic))
      return;
    WorkerState& ws = workers_[static_cast<size_t>(w)];
    if (ws.poll_scheduled) return;
    SimQatInstance* inst = ws.instance;
    const size_t total = inst->inflight_total();
    if (total == 0) return;
    const size_t threshold = inst->inflight_asym() > 0
                                 ? p_.heuristic.asym_threshold
                                 : p_.heuristic.sym_threshold;
    const bool efficiency = total >= threshold;
    const bool timeliness = ws.active > 0 && total >= ws.active;
    // §3.4: while requests are in flight the main event loop keeps
    // executing instead of sleep-waiting — an otherwise-idle worker polls.
    const bool idle_loop =
        !efficiency && !timeliness && ws.cpu->idle_at(sim_.now());
    if (!efficiency && !timeliness && !idle_loop) return;
    if (in_window()) {
      if (efficiency) ++result_.efficiency_triggers;
      else if (timeliness) ++result_.timeliness_triggers;
    }
    ws.poll_scheduled = true;
    const size_t est = inst->ready_count(sim_.now());
    const SimTime cost =
        p_.costs.poll_cpu +
        static_cast<SimTime>(est) * p_.costs.poll_per_response_cpu;
    wexec(w, cost, [this, w] {
      WorkerState& state = workers_[static_cast<size_t>(w)];
      state.poll_scheduled = false;
      if (in_window()) ++result_.heuristic_polls;
      const size_t got = state.instance->poll();
      if (got == 0 && state.instance->inflight_total() > 0) {
        // Nothing ready yet but the constraint persists (all active
        // connections blocked): the loop keeps polling (§3.4).
        state.poll_scheduled = true;
        sim_.schedule_after(3 * kUs, [this, w] {
          workers_[static_cast<size_t>(w)].poll_scheduled = false;
          heuristic_check(w);
        });
      }
    });
  }

  void schedule_tick(int w) {
    sim_.schedule_after(p_.timer_interval, [this, w] {
      workers_[static_cast<size_t>(w)].instance->poll();
      schedule_tick(w);
    });
  }

  // ---------------------------------------------------------------- data --
  RunParams p_;
  ConfigKnobs knobs_;
  Simulator sim_;
  Rng rng_;
  SimQatDevice device_;
  SimResource nic_;
  std::vector<WorkerState> workers_;
  std::vector<bool> client_has_session_ = std::vector<bool>(65536, false);
  int next_worker_ = 0;

  RunResult result_;
  uint64_t requests_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t payload_inflight_ = 0;
};

}  // namespace

RunResult run_simulation(const RunParams& params) {
  SimSystem system(params);
  return system.run();
}

}  // namespace qtls::sim
