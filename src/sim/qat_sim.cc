#include "sim/qat_sim.h"

#include <algorithm>

namespace qtls::sim {

bool SimQatInstance::submit(SOp op, std::function<void()> on_retrieved) {
  return submit(op, endpoint_->costs_->qat_service(op),
                std::move(on_retrieved));
}

SimTime SimQatInstance::submit_blocking(SOp op, SimTime service) {
  if (ring_occupancy_ >= ring_capacity_) return 0;
  ++ring_occupancy_;
  const SimTime done_at = endpoint_->dispatch(service);
  endpoint_->sim_->schedule_at(done_at, [this] {
    --ring_occupancy_;
    ++endpoint_->completed_;
  });
  (void)op;
  return done_at;
}

bool SimQatInstance::submit(SOp op, SimTime service,
                            std::function<void()> on_retrieved) {
  if (ring_occupancy_ >= ring_capacity_) return false;
  ++ring_occupancy_;
  ++inflight_total_;
  if (CostModel::is_asym(op)) ++inflight_asym_;

  const SimTime done_at = endpoint_->dispatch(service);
  const uint64_t id = endpoint_->next_request_id_++;

  // The hardware reads the request off the ring when an engine starts it;
  // modelling the slot release at dispatch-time start is equivalent here to
  // releasing at completion for the failure path, so release at completion
  // event for simplicity.
  endpoint_->sim_->schedule_at(
      done_at, [this, id, op, done_at, cb = std::move(on_retrieved)]() mutable {
        --ring_occupancy_;
        ++endpoint_->completed_;
        ready_.push_back(SimResponse{id, op, done_at, std::move(cb)});
      });
  return true;
}

size_t SimQatInstance::poll(size_t max) {
  size_t got = 0;
  while (!ready_.empty() && got < max) {
    SimResponse resp = std::move(ready_.front());
    ready_.pop_front();
    --inflight_total_;
    if (CostModel::is_asym(resp.op)) --inflight_asym_;
    ++got;
    if (resp.on_retrieved) resp.on_retrieved();
  }
  return got;
}

SimTime SimQatInstance::next_ready_time() const {
  return ready_.empty() ? 0 : ready_.front().ready_at;
}

size_t SimQatInstance::ready_count(SimTime now) const {
  size_t n = 0;
  for (const auto& r : ready_)
    if (r.ready_at <= now) ++n;
  return n;
}

SimTime SimQatEndpoint::dispatch(SimTime service) {
  auto it = std::min_element(engine_free_.begin(), engine_free_.end());
  const SimTime start = std::max(sim_->now(), *it);
  *it = start + service;
  engine_busy_accum_ += service;
  return *it;
}

double SimQatEndpoint::utilization(SimTime now) const {
  if (now == 0) return 0.0;
  return static_cast<double>(engine_busy_accum_) /
         (static_cast<double>(now) * static_cast<double>(engine_free_.size()));
}

}  // namespace qtls::sim
