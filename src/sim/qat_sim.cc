#include "sim/qat_sim.h"

#include <algorithm>

namespace qtls::sim {

namespace {
// Virtual-plane fault counters, mirroring FaultPlan's own tallies so
// tests/trace_sim_test.cc can prove conservation: every injected decision
// shows up exactly once in the global registry.
struct SimObsCounters {
  obs::Counter submitted, error, reset, drop, stall;

  SimObsCounters() {
    auto& reg = obs::MetricsRegistry::global();
    submitted = reg.counter("sim.qat.submitted");
    error = reg.counter("sim.qat.error");
    reset = reg.counter("sim.qat.reset");
    drop = reg.counter("sim.qat.drop");
    stall = reg.counter("sim.qat.stall");
  }
};

SimObsCounters& obs_counters() {
  static SimObsCounters counters;
  return counters;
}
}  // namespace

bool SimQatInstance::submit(SOp op, std::function<void()> on_retrieved) {
  return submit(op, endpoint_->costs_->qat_service(op),
                std::move(on_retrieved));
}

bool SimQatInstance::submit(SOp op, SimTime service,
                            std::function<void()> on_retrieved) {
  std::function<void(qat::CryptoStatus)> cb;
  if (on_retrieved)
    cb = [f = std::move(on_retrieved)](qat::CryptoStatus) { f(); };
  return submit_with_status(op, service, std::move(cb));
}

SimTime SimQatInstance::submit_blocking(SOp op, SimTime service) {
  if (ring_occupancy_ >= ring_capacity_) return 0;
  ++ring_occupancy_;
  const SimTime done_at = endpoint_->dispatch(service);
  endpoint_->sim_->schedule_at(done_at, [this] {
    --ring_occupancy_;
    ++endpoint_->completed_;
  });
  (void)op;
  return done_at;
}

bool SimQatInstance::submit_with_status(
    SOp op, SimTime service,
    std::function<void(qat::CryptoStatus)> on_retrieved) {
  if (ring_occupancy_ >= ring_capacity_) return false;

  // Service-point fault injection — the same plan contract as the real-time
  // backend's QatEndpoint::serve() (qat/fault.h). In virtual time the
  // service point is the dispatch onto an engine, decided here so the fault
  // stream is a pure function of submit order.
  qat::FaultDecision fault;
  if (endpoint_->fault_plan_)
    fault = endpoint_->fault_plan_->decide(endpoint_->costs_->qat_kind(op));

  qat::CryptoStatus status = qat::CryptoStatus::kSuccess;
  switch (fault.kind) {
    case qat::FaultKind::kError:
      status = qat::CryptoStatus::kDeviceError;
      service = 0;  // failed fast: the computation never ran
      obs_counters().error.inc();
      break;
    case qat::FaultKind::kReset:
      status = qat::CryptoStatus::kDeviceReset;
      service = 0;
      obs_counters().reset.inc();
      break;
    case qat::FaultKind::kStall:
      service += fault.stall_ns;  // stuck engine, then serves normally
      obs_counters().stall.inc();
      break;
    case qat::FaultKind::kDrop:
      obs_counters().drop.inc();
      break;
    case qat::FaultKind::kNone:
      break;
  }
  obs_counters().submitted.inc();

  ++ring_occupancy_;
  ++inflight_total_;
  if (CostModel::is_asym(op)) ++inflight_asym_;

  // Virtual-time stamping: every stage boundary is already known here.
  // Submission and ring-enqueue coincide (the sim ring has no submit/push
  // gap); engine claim and service start coincide (engines never sit on a
  // claimed request).
  const SimTime now = endpoint_->sim_->now();
  obs::TraceStamps trace;
  obs::trace_begin_at(trace, now);
  trace.stamp_at(obs::Stage::kRingEnqueue, now);

  SimTime service_start = 0;
  const SimTime done_at = endpoint_->dispatch(service, &service_start);
  trace.stamp_at(obs::Stage::kEngineClaim, service_start);
  trace.stamp_at(obs::Stage::kServiceStart, service_start);
  trace.stamp_at(obs::Stage::kServiceDone, done_at);
  const uint64_t id = endpoint_->next_request_id_++;

  if (fault.kind == qat::FaultKind::kDrop) {
    // Lost response: the device-side slot is freed at completion but no
    // response is ever deliverable — parity with the real backend, where
    // only an engine-level deadline recovers the caller.
    endpoint_->sim_->schedule_at(done_at, [this, op] {
      --ring_occupancy_;
      --inflight_total_;
      if (CostModel::is_asym(op)) --inflight_asym_;
      ++dropped_;
      ++endpoint_->completed_;
    });
    return true;
  }

  // The hardware reads the request off the ring when an engine starts it;
  // modelling the slot release at dispatch-time start is equivalent here to
  // releasing at completion for the failure path, so release at completion
  // event for simplicity.
  endpoint_->sim_->schedule_at(
      done_at,
      [this, id, op, done_at, status, trace,
       cb = std::move(on_retrieved)]() mutable {
        --ring_occupancy_;
        ++endpoint_->completed_;
        ready_.push_back(SimResponse{id, op, done_at, status, nullptr,
                                     std::move(cb), trace});
      });
  return true;
}

size_t SimQatInstance::poll(size_t max) {
  size_t got = 0;
  while (!ready_.empty() && got < max) {
    SimResponse resp = std::move(ready_.front());
    ready_.pop_front();
    --inflight_total_;
    if (CostModel::is_asym(resp.op)) --inflight_asym_;
    ++got;
    if (resp.trace.sampled) {
      resp.trace.stamp_at(obs::Stage::kPollDrain, endpoint_->sim_->now());
      obs::record_pipeline(
          resp.trace, resp.request_id,
          static_cast<int>(
              qat::op_class_of(endpoint_->costs_->qat_kind(resp.op))),
          /*sim=*/true);
    }
    if (resp.on_retrieved_status)
      resp.on_retrieved_status(resp.status);
    else if (resp.on_retrieved)
      resp.on_retrieved();
  }
  return got;
}

SimTime SimQatInstance::next_ready_time() const {
  return ready_.empty() ? 0 : ready_.front().ready_at;
}

size_t SimQatInstance::ready_count(SimTime now) const {
  size_t n = 0;
  for (const auto& r : ready_)
    if (r.ready_at <= now) ++n;
  return n;
}

SimTime SimQatEndpoint::dispatch(SimTime service, SimTime* start_out) {
  auto it = std::min_element(engine_free_.begin(), engine_free_.end());
  const SimTime start = std::max(sim_->now(), *it);
  *it = start + service;
  engine_busy_accum_ += service;
  if (start_out) *start_out = start;
  return *it;
}

double SimQatEndpoint::utilization(SimTime now) const {
  if (now == 0) return 0.0;
  return static_cast<double>(engine_busy_accum_) /
         (static_cast<double>(now) * static_cast<double>(engine_free_.size()));
}

}  // namespace qtls::sim
