// Discrete-event simulation core: a virtual clock and an event queue.
// Deterministic: ties break by schedule order. Time unit: nanoseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace qtls::sim {

using SimTime = uint64_t;  // nanoseconds

constexpr SimTime kUs = 1'000;
constexpr SimTime kMs = 1'000'000;
constexpr SimTime kSec = 1'000'000'000;

class Simulator {
 public:
  SimTime now() const { return now_; }

  void schedule_at(SimTime when, std::function<void()> fn) {
    queue_.push(Event{when < now_ ? now_ : when, seq_++, std::move(fn)});
  }
  void schedule_after(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Runs events until the queue empties or the clock passes `until`.
  void run_until(SimTime until) {
    while (!queue_.empty() && queue_.top().when <= until) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.when;
      ev.fn();
    }
    if (now_ < until) now_ = until;
  }

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  uint64_t seq_ = 0;
};

// A serial resource (one worker core, the NIC): tasks run back to back.
class SimResource {
 public:
  explicit SimResource(Simulator* sim) : sim_(sim) {}

  // Reserve `cost` ns of this resource starting no earlier than now;
  // schedules `fn` at completion and returns the completion time.
  SimTime exec(SimTime cost, std::function<void()> fn) {
    const SimTime start = std::max(sim_->now(), busy_until_);
    busy_until_ = start + cost;
    busy_accum_ += cost;
    if (fn) sim_->schedule_at(busy_until_, std::move(fn));
    return busy_until_;
  }

  // Occupy without a completion callback (accounting only).
  SimTime occupy(SimTime cost) { return exec(cost, nullptr); }

  SimTime busy_until() const { return busy_until_; }
  SimTime total_busy() const { return busy_accum_; }
  bool idle_at(SimTime t) const { return busy_until_ <= t; }

 private:
  Simulator* sim_;
  SimTime busy_until_ = 0;
  SimTime busy_accum_ = 0;
};

}  // namespace qtls::sim
