// Calibrated cost model for the virtual-time plane. Two families of
// constants:
//
//  * Measured/derivable quantities — QAT engine service times come from
//    qat/service_time.h (anchored to the paper's stated card limits);
//    software crypto costs are anchored to the paper's own software
//    baselines (§5.2: SW TLS-RSA = 4.3K CPS on 8 HT workers, [35]'s
//    <0.5K ECDHE handshakes/core, the 2.33x Montgomery-friendly P-256
//    speedup, fig. 10's 14 Gbps software transfer ceiling).
//
//  * Calibrated overheads — per-offload submit/resume/notify costs and the
//    straight-offload blocking overhead, tuned so the five configurations
//    reproduce the paper's RATIOS (9x/7x/+20%/+8% in fig. 7a, 2x QAT+S,
//    etc.). EXPERIMENTS.md details each knob's derivation.
//
// All values are nanoseconds of a hyper-threaded core unless noted.
#pragma once

#include "qat/service_time.h"
#include "sim/des.h"

namespace qtls::sim {

// Server-side operation kinds with distinct software costs.
enum class SOp : uint8_t {
  kRsaPriv,      // RSA-2048 private op (sign or decrypt)
  kEcdhP256,     // P-256 point multiplication (ECDH side)
  kEcdsaP256,    // P-256 ECDSA sign — Montgomery-friendly fast path (§5.2)
  kEcdhP384,
  kEcdsaP384,
  kEcdhB283,     // binary-field curves (B- and K- share field costs)
  kEcdhB409,
  kPrf,          // one TLS 1.2 PRF invocation
  kCipher16k,    // chained cipher over one full 16 KB record
};

struct CostModel {
  // --- software crypto (CPU ns per op) --------------------------------
  SimTime sw_rsa2048 = 1'620 * kUs;
  SimTime sw_ecdh_p256 = 130 * kUs;   // Montgomery-domain optimized
  SimTime sw_ecdsa_p256 = 105 * kUs;  // 2.33x faster than the generic path
  SimTime sw_ecdh_p384 = 1'000 * kUs;
  SimTime sw_ecdsa_p384 = 1'000 * kUs;
  SimTime sw_ecdh_b283 = 1'200 * kUs;
  SimTime sw_ecdh_b409 = 1'500 * kUs;
  SimTime sw_prf = 30 * kUs;
  SimTime sw_cipher_16k = 55 * kUs;   // AES128-CBC + HMAC-SHA1, AES-NI class

  // --- QAT engine service times (see qat/service_time.h) --------------
  qat::ServiceTimeModel qat;

  // --- non-crypto handshake CPU (per full handshake, split per flight) --
  SimTime hs_accept_cpu = 60 * kUs;    // accept + ClientHello processing
  SimTime hs_flight_cpu = 40 * kUs;    // build/send the server flight
  SimTime hs_finish_pre_cpu = 30 * kUs;   // CKE/CCS/Finished parsing
  SimTime hs_finish_post_cpu = 20 * kUs;  // final flight + bookkeeping
  // TLS 1.3: the non-offloadable key schedule + handshake-record protection
  // lump (§5.2: HKDF cannot be offloaded) — calibrated to Fig. 8's 3.5x.
  SimTime tls13_kdf_cpu = 500 * kUs;
  SimTime tls13_client_fin_cpu = 40 * kUs;

  // --- offload-path CPU overheads --------------------------------------
  SimTime submit_cpu = 4 * kUs;        // build request + ring write
  SimTime resume_cpu = 4 * kUs;        // fiber swap + post-processing entry
  SimTime notify_fd_cpu = 8 * kUs;     // eventfd write + epoll + read + dispatch
  SimTime notify_kb_cpu = 3 * kUs;     // async-queue push + drain dispatch
  SimTime poll_cpu = 2 * kUs;          // one polling operation (ring scan)
  SimTime poll_per_response_cpu = 700; // per retrieved response
  // Straight offload (QAT+S): per-op blocking overhead beyond the raw
  // service wait — scheduler sleep/wakeup at the polling-thread quantum,
  // driver round trip, cache disturbance. Calibrated so QAT+S lands at the
  // paper's ~2x over SW for TLS-RSA (Fig. 7a).
  SimTime sync_block_overhead = 70 * kUs;
  // Busy-loop self-poll (the Fig. 11 QAT+S latency configuration) pays only
  // a small recovery cost per op instead.
  SimTime busy_poll_overhead = 5 * kUs;

  // --- timer-based polling thread (pinned to the worker's core) --------
  // Per tick: two context switches + one poll. With a 10 us interval this
  // taxes the co-located worker ~20% (§5.6's observed gap).
  SimTime timer_tick_cpu = 2 * kUs;

  // --- HTTP / transfer path --------------------------------------------
  SimTime http_request_cpu = 30 * kUs;   // parse request + build headers
  SimTime tcp_per_16k_cpu = 20 * kUs;    // kernel send path per record
  double nic_gbps = 40.0;                // XL710 line rate
  SimTime rtt = 200 * kUs;               // client<->server round trip

  // --- remote offload tier (DESIGN.md §13) ------------------------------
  // Disaggregated offload server reached over the batch-RPC channel. The
  // RTT is a datacenter-LAN round trip (same rack, kernel TCP path); the
  // serialize/item costs are the client-side CPU spent building a frame
  // and each op row inside it; the server dispatches ops onto its own
  // engine pool with `remote_server_engines` ways of parallelism.
  SimTime remote_rtt = 120 * kUs;
  SimTime remote_serialize_cpu = 3 * kUs;   // frame header + flush syscall
  SimTime remote_item_cpu = 1 * kUs;        // encode one op row
  SimTime remote_server_op_dispatch = 2 * kUs;  // server parse + dispatch
  int remote_server_engines = 8;

  // --- record data plane (DESIGN.md §11) --------------------------------
  // One memcpy pass over a full 16 KB record (~8 GB/s effective including
  // cache pollution). The legacy coalesced plane makes 3 passes per payload
  // byte; the iovec-chain plane makes 1 (the connection staging copy).
  SimTime copy_per_16k_cpu = 2 * kUs;
  // Marshalling cost per extra record riding a batched seal submission —
  // batch members skip the full submit/notify/resume round trip.
  SimTime batch_item_cpu = 500;

  // -------------------------------------------------------------------
  SimTime sw_cost(SOp op) const {
    switch (op) {
      case SOp::kRsaPriv: return sw_rsa2048;
      case SOp::kEcdhP256: return sw_ecdh_p256;
      case SOp::kEcdsaP256: return sw_ecdsa_p256;
      case SOp::kEcdhP384: return sw_ecdh_p384;
      case SOp::kEcdsaP384: return sw_ecdsa_p384;
      case SOp::kEcdhB283: return sw_ecdh_b283;
      case SOp::kEcdhB409: return sw_ecdh_b409;
      case SOp::kPrf: return sw_prf;
      case SOp::kCipher16k: return sw_cipher_16k;
    }
    return 0;
  }

  qat::OpKind qat_kind(SOp op) const {
    switch (op) {
      case SOp::kRsaPriv: return qat::OpKind::kRsa2048Priv;
      case SOp::kEcdhP256:
      case SOp::kEcdsaP256: return qat::OpKind::kEcP256;
      case SOp::kEcdhP384:
      case SOp::kEcdsaP384: return qat::OpKind::kEcP384;
      case SOp::kEcdhB283: return qat::OpKind::kEcBinary283;
      case SOp::kEcdhB409: return qat::OpKind::kEcBinary409;
      case SOp::kPrf: return qat::OpKind::kPrfTls12;
      case SOp::kCipher16k: return qat::OpKind::kCipher16k;
    }
    return qat::OpKind::kPrfTls12;
  }

  SimTime qat_service(SOp op) const { return qat.service_ns(qat_kind(op)); }

  static bool is_asym(SOp op) {
    return op != SOp::kPrf && op != SOp::kCipher16k;
  }
};

}  // namespace qtls::sim
