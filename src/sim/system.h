// The evaluated system in virtual time: N event-driven workers (one core
// each), a QAT card, and closed-loop clients — parameterized over the five
// paper configurations (SW / QAT+S / QAT+A / QAT+AH / QTLS), the TLS
// workload (suite, version, resumption mix, transfer size) and the polling/
// notification schemes. Every figure bench is a sweep over RunParams.
#pragma once

#include <memory>
#include <optional>

#include "common/stats.h"
#include "server/heuristic_poller.h"
#include "sim/qat_sim.h"
#include "tls/types.h"

namespace qtls::sim {

enum class Config { kSW, kQatS, kQatA, kQatAH, kQtls };
const char* config_name(Config c);

enum class PollMode { kBusy, kTimer, kHeuristic };
enum class NotifyMode { kFd, kKernelBypass };

struct RunParams {
  Config config = Config::kSW;
  int workers = 8;
  int clients = 2000;

  tls::CipherSuite suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
  qtls::CurveId curve = qtls::CurveId::kP256;
  // Fraction of connections doing a full handshake (rest abbreviated).
  double full_handshake_ratio = 1.0;

  // Transfer mode (Fig. 10/12b): persistent connections, repeated GETs of a
  // fixed object; CPS mode otherwise (one handshake per connection).
  bool transfer_mode = false;
  size_t file_bytes = 64 * 1024;
  // Model the pre-batching coalesced TX plane (3 copy passes per payload
  // byte, one submit/notify round trip per record) instead of the iovec-
  // chain batch plane (1 pass, batched submits). DESIGN.md §11.
  bool legacy_dataplane = false;
  // CPS mode: also serve one small page per connection (Fig. 11's
  // full-handshake-per-request latency workload).
  bool include_request = false;

  // Overrides for the §5.6 polling-scheme comparison; by default derived
  // from `config`.
  std::optional<PollMode> poll_override;
  std::optional<NotifyMode> notify_override;
  SimTime timer_interval = 10 * kUs;
  // QAT+S: busy-loop self-poll (Fig. 11) instead of the timer-quantum wait.
  bool sync_busy_poll = false;

  server::HeuristicPollerConfig heuristic;  // thresholds 48/24
  int endpoints = 3;
  int engines_per_endpoint = 12;
  size_t ring_capacity = 64;

  CostModel costs;
  SimTime warmup = 200 * kMs;
  SimTime duration = 2 * kSec;
  uint64_t seed = 42;
};

struct RunResult {
  double cps = 0;               // completed handshakes per second
  double requests_per_sec = 0;
  double throughput_gbps = 0;   // payload goodput
  LatencyHistogram latency;     // CPS mode: connect->response; transfer:
                                // request->response
  uint64_t handshakes = 0;
  uint64_t abbreviated = 0;
  uint64_t submit_retries = 0;  // ring-full retry events
  // TX data-plane copy meter (DESIGN.md §11): payload bytes memcpy'd vs
  // handed to the NIC inside the measurement window.
  uint64_t bytes_copied = 0;
  uint64_t bytes_sent = 0;
  double bytes_copied_per_byte = 0;
  double qat_utilization = 0;   // engine busy fraction
  double cpu_utilization = 0;   // mean worker-core busy fraction
  uint64_t heuristic_polls = 0;
  uint64_t timeliness_triggers = 0;
  uint64_t efficiency_triggers = 0;
};

RunResult run_simulation(const RunParams& params);

// Resolved scheme knobs for a configuration (exposed for tests).
struct ConfigKnobs {
  bool offload = false;
  bool async = false;          // QTLS framework vs straight blocking
  PollMode poll = PollMode::kBusy;
  NotifyMode notify = NotifyMode::kFd;
};
ConfigKnobs resolve_config(const RunParams& params);

}  // namespace qtls::sim
