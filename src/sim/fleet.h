// Fleet-scale DES scenario (DESIGN.md §14): N simulated front-end servers
// behind a load balancer, each owning a deterministic-epoch TicketKeyRing
// derived from the SAME fleet seed — so a session ticket sealed by any
// server unseals on any other with zero key coordination. Connections
// arrive, handshake (full or resumed), dwell established, close, and a
// fraction reconnect later through the balancer to a *random* server
// offering their ticket: the cross-fleet resumption path bench/million_conn
// gates on. Seal and unseal are the REAL TicketKeyRing paths (AES-CBC +
// HMAC per ticket), not a hash-table stand-in.
//
// Per-connection state is slab-allocated (sim.fleet_conn pool) and the
// memory model is explicit: every established connection is costed at the
// measured idle bytes/connection (bench part A feeds the number in), so the
// bench can report what a million keepalive connections actually pin.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/slab.h"
#include "crypto/kdf.h"
#include "sim/des.h"
#include "tls/session_plane.h"

namespace qtls::sim {

struct FleetConfig {
  size_t servers = 8;
  size_t connections = 1'000'000;
  // Arrival spacing and established dwell (exponential, virtual time).
  uint64_t mean_interarrival_us = 600;  // ~1M conns over ~10 virtual minutes
  uint64_t mean_lifetime_ms = 60'000;
  // Fraction of closed connections that come back with their ticket, and
  // how long they stay away (exponential, capped at 3x the mean so the
  // epoch accept window keeps them resumable).
  double reconnect_fraction = 0.7;
  uint64_t mean_reconnect_delay_ms = 20'000;
  // Deterministic epoch ticket keys — identical config on every server.
  // Rotation is fast enough that the default run crosses several epoch
  // boundaries (exercising old-epoch accepts), and the accept window covers
  // the maximum ticket age (3x dwell + 3x reconnect delay = 240 s = exactly
  // two intervals), so the hit-rate gate stays deterministic.
  uint64_t ticket_rotate_interval_ms = 120'000;
  uint32_t ticket_accept_epochs = 2;
  uint64_t ticket_lifetime_ms = 3'600'000;
  uint64_t fleet_seed = 0x666c656574ULL;  // "fleet"
  uint64_t rng_seed = 1;
  // Measured idle heap bytes per established connection (bench part A).
  size_t idle_bytes_per_conn = 0;
};

struct FleetResult {
  uint64_t completed = 0;          // connections that closed cleanly
  uint64_t full_handshakes = 0;
  uint64_t resumption_attempts = 0;
  uint64_t resumption_hits = 0;    // unseal accepted (current or old epoch)
  uint64_t old_epoch_hits = 0;     // accepted under a previous epoch's key
  uint64_t cross_fleet_hits = 0;   // sealed on server A, resumed on server B
  uint64_t resumption_misses = 0;  // rejected -> fell back to full handshake
  size_t peak_live = 0;            // max concurrently-established connections
  size_t peak_idle_bytes = 0;      // peak_live * idle_bytes_per_conn
  size_t slab_live_at_end = 0;     // must be 0 (conservation)
  uint64_t slab_allocs = 0;
  uint64_t slab_frees = 0;
  SimTime sim_duration = 0;

  double hit_rate() const {
    return resumption_attempts == 0
               ? 1.0
               : static_cast<double>(resumption_hits) /
                     static_cast<double>(resumption_attempts);
  }
};

class FleetSim {
 public:
  explicit FleetSim(FleetConfig config);
  ~FleetSim();
  FleetResult run();

 private:
  struct FleetConn;
  struct Server {
    std::unique_ptr<tls::TicketKeyRing> ring;
    uint64_t established = 0;
  };

  uint64_t next_u64();
  uint64_t exp_sample(uint64_t mean);  // never returns zero
  uint64_t now_ms() const { return sim_.now() / kMs; }

  // Self-perpetuating fresh-arrival generator (keeps the event queue at
  // O(live) instead of pre-scheduling a million arrivals).
  void arrival_tick();
  // One client hitting the balancer; `ticket` non-empty on a reconnect,
  // `sealed_by` the server that minted it (cross-fleet accounting).
  void on_connect(Bytes ticket, size_t sealed_by);
  void on_close(FleetConn* conn);

  FleetConfig config_;
  Simulator sim_;
  std::vector<Server> servers_;
  common::SlabPool<FleetConn> pool_;
  HmacDrbg ticket_iv_rng_;
  uint64_t rng_;
  size_t launched_ = 0;
  size_t live_ = 0;
  FleetResult result_;
};

}  // namespace qtls::sim
