// Virtual-time QAT device: same semantics as the real-time backend in
// src/qat/ (endpoints with parallel engines, per-instance bounded request
// rings, response-by-polling, hardware load balancing, fault injection at
// the service point), driven by the DES clock instead of threads.
#pragma once

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "obs/trace.h"
#include "qat/fault.h"
#include "sim/costs.h"
#include "sim/des.h"

namespace qtls::sim {

class SimQatEndpoint;

// A completed-response record waiting to be polled.
struct SimResponse {
  uint64_t request_id;
  SOp op;
  SimTime ready_at;
  qat::CryptoStatus status = qat::CryptoStatus::kSuccess;
  std::function<void()> on_retrieved;  // runs when the poll delivers it
  // Status-aware form (fault-injected runs); runs instead of on_retrieved
  // when set.
  std::function<void(qat::CryptoStatus)> on_retrieved_status;
  // Virtual-time lifecycle stamps (obs/trace.h): submit/enqueue at the
  // submit call, claim/service-start at engine dispatch, service-done at
  // completion — all in DES nanoseconds, so stage deltas are exactly the
  // sim/costs.h model (tests/trace_sim_test.cc).
  obs::TraceStamps trace;
};

class SimQatInstance {
 public:
  SimQatInstance(SimQatEndpoint* endpoint, size_t ring_capacity)
      : endpoint_(endpoint), ring_capacity_(ring_capacity) {}

  // Non-blocking submit with an explicit service time (callers may scale
  // the model's per-op time, e.g. partial records); false when the ring is
  // full.
  bool submit(SOp op, SimTime service, std::function<void()> on_retrieved);
  bool submit(SOp op, std::function<void()> on_retrieved);
  // Status-aware submit: the callback observes the response's CryptoStatus
  // (fault-injected runs). The void-callback overloads delegate here.
  bool submit_with_status(SOp op, SimTime service,
                          std::function<void(qat::CryptoStatus)> on_retrieved);

  // Straight-offload helper: submit and return the completion time (the
  // caller blocks until then); 0 when the ring is full. The response is
  // consumed implicitly at completion (no poll step).
  SimTime submit_blocking(SOp op, SimTime service);

  // Retrieve responses that are ready at the current sim time. Invokes each
  // response's continuation; returns the count.
  size_t poll(size_t max = static_cast<size_t>(-1));
  // The earliest time the next response becomes ready (for busy-wait
  // modelling); 0 if none pending.
  SimTime next_ready_time() const;

  size_t inflight_total() const { return inflight_total_; }
  size_t inflight_asym() const { return inflight_asym_; }
  size_t ready_count(SimTime now) const;
  // Responses lost to injected kDrop faults (device slot freed, nothing to
  // poll) — the sim mirror of the real backend's fw request/response gap.
  uint64_t dropped_responses() const { return dropped_; }

  SimQatEndpoint* endpoint() const { return endpoint_; }

 private:
  friend class SimQatEndpoint;

  SimQatEndpoint* endpoint_;
  size_t ring_capacity_;
  size_t ring_occupancy_ = 0;  // submitted, not yet taken by an engine
  size_t inflight_total_ = 0;  // submitted, not yet retrieved
  size_t inflight_asym_ = 0;
  uint64_t dropped_ = 0;
  std::deque<SimResponse> ready_;  // completed, awaiting poll (FIFO)
};

class SimQatEndpoint {
 public:
  SimQatEndpoint(Simulator* sim, const CostModel* costs, int engines)
      : sim_(sim), costs_(costs), engine_free_(static_cast<size_t>(engines), 0) {}

  SimQatInstance* make_instance(size_t ring_capacity) {
    instances_.push_back(
        std::make_unique<SimQatInstance>(this, ring_capacity));
    return instances_.back().get();
  }

  uint64_t completed_ops() const { return completed_; }
  // Engine-time utilization over [0, now].
  double utilization(SimTime now) const;

  // Fault-injection plan consulted when ops are dispatched (same contract
  // as DeviceConfig::fault_plan on the real-time backend). Non-owning.
  void set_fault_plan(qat::FaultPlan* plan) { fault_plan_ = plan; }
  qat::FaultPlan* fault_plan() const { return fault_plan_; }

 private:
  friend class SimQatInstance;

  // Assign the earliest-free engine; returns completion time. When
  // `start_out` is set it receives the service start time (engine claim).
  SimTime dispatch(SimTime service, SimTime* start_out = nullptr);

  Simulator* sim_;
  const CostModel* costs_;
  std::vector<SimTime> engine_free_;
  std::vector<std::unique_ptr<SimQatInstance>> instances_;
  uint64_t completed_ = 0;
  SimTime engine_busy_accum_ = 0;
  uint64_t next_request_id_ = 1;
  qat::FaultPlan* fault_plan_ = nullptr;
};

// The whole card.
class SimQatDevice {
 public:
  SimQatDevice(Simulator* sim, const CostModel* costs, int endpoints,
               int engines_per_endpoint) {
    for (int i = 0; i < endpoints; ++i)
      endpoints_.push_back(
          std::make_unique<SimQatEndpoint>(sim, costs, engines_per_endpoint));
  }

  // Instances distributed evenly across endpoints (§5.1).
  SimQatInstance* allocate_instance(size_t ring_capacity = 64) {
    SimQatEndpoint* ep = endpoints_[next_++ % endpoints_.size()].get();
    return ep->make_instance(ring_capacity);
  }

  uint64_t completed_ops() const {
    uint64_t total = 0;
    for (const auto& ep : endpoints_) total += ep->completed_ops();
    return total;
  }

  // Install one fault plan across every endpoint (the card fails as a unit).
  void set_fault_plan(qat::FaultPlan* plan) {
    for (auto& ep : endpoints_) ep->set_fault_plan(plan);
  }

 private:
  std::vector<std::unique_ptr<SimQatEndpoint>> endpoints_;
  size_t next_ = 0;
};

// Multi-device fleet in virtual time — the DES mirror of
// qat::DeviceTopology (DESIGN.md §12): N cards, each with its own fault
// plan (devices fail independently), an online flag driven by
// hot_remove()/re_add(), and a shallowest-queue balancer for placement.
// Service capacity scales with device count because each device brings its
// own engine set — the cost model the 1/2/4-device scaling benches sweep.
class SimDeviceTopology {
 public:
  SimDeviceTopology(Simulator* sim, const CostModel* costs, int num_devices,
                    int endpoints, int engines_per_endpoint,
                    uint64_t fault_seed = 0x746f706fULL) {
    for (int i = 0; i < std::max(1, num_devices); ++i) {
      auto slot = std::make_unique<Slot>();
      slot->plan = std::make_unique<qat::FaultPlan>(
          fault_seed ^ (static_cast<uint64_t>(i + 1) * 0x9e3779b97f4a7c15ULL));
      slot->dev = std::make_unique<SimQatDevice>(sim, costs, endpoints,
                                                 engines_per_endpoint);
      slot->dev->set_fault_plan(slot->plan.get());
      devices_.push_back(std::move(slot));
    }
  }

  int num_devices() const { return static_cast<int>(devices_.size()); }
  SimQatDevice& device(int i) { return *devices_[static_cast<size_t>(i)]->dev; }
  qat::FaultPlan& fault_plan(int i) {
    return *devices_[static_cast<size_t>(i)]->plan;
  }
  bool online(int i) const { return devices_[static_cast<size_t>(i)]->online; }
  int online_devices() const {
    int n = 0;
    for (const auto& d : devices_)
      if (d->online) ++n;
    return n;
  }

  // Same reset-latch failover as the real-time topology: every op at the
  // removed device's service point fails with kDeviceReset, so in-flight
  // work drains through error responses.
  void hot_remove(int i) {
    Slot& slot = *devices_[static_cast<size_t>(i)];
    if (!slot.online) return;
    slot.online = false;
    slot.plan->trigger_reset();
  }
  void re_add(int i) {
    Slot& slot = *devices_[static_cast<size_t>(i)];
    if (slot.online) return;
    slot.plan->clear_reset();
    slot.online = true;
  }

  SimQatInstance* allocate_instance(int device, size_t ring_capacity = 64) {
    Slot& slot = *devices_[static_cast<size_t>(device)];
    SimQatInstance* inst = slot.dev->allocate_instance(ring_capacity);
    slot.instances.push_back(inst);
    return inst;
  }

  // Submitted-but-not-retrieved across the device's allocated instances.
  size_t queue_depth(int i) const {
    size_t depth = 0;
    for (const SimQatInstance* inst :
         devices_[static_cast<size_t>(i)]->instances)
      depth += inst->inflight_total();
    return depth;
  }

  // The affine device unless offline or deeper than the online minimum by
  // more than `spill_threshold`; -1 when every device is offline.
  int pick_device(int preferred, size_t spill_threshold = 32) const {
    size_t min_depth = static_cast<size_t>(-1);
    int shallowest = -1;
    for (int d = 0; d < num_devices(); ++d) {
      if (!online(d)) continue;
      const size_t depth = queue_depth(d);
      if (depth < min_depth) {
        min_depth = depth;
        shallowest = d;
      }
    }
    if (shallowest < 0) return -1;
    if (preferred < 0 || preferred >= num_devices() || !online(preferred))
      return shallowest;
    if (queue_depth(preferred) > min_depth + spill_threshold)
      return shallowest;
    return preferred;
  }

  uint64_t completed_ops() const {
    uint64_t total = 0;
    for (const auto& d : devices_) total += d->dev->completed_ops();
    return total;
  }

 private:
  struct Slot {
    std::unique_ptr<SimQatDevice> dev;
    std::unique_ptr<qat::FaultPlan> plan;
    std::vector<SimQatInstance*> instances;  // non-owning (device owns)
    bool online = true;
  };
  std::vector<std::unique_ptr<Slot>> devices_;
};

}  // namespace qtls::sim
