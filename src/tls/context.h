// TlsContext: per-role (server/client) long-lived configuration — the
// SSL_CTX analogue. Owns credentials, cipher preferences, the session cache
// / ticket keys, and the crypto provider binding (software or QAT engine).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "crypto/keystore.h"
#include "engine/provider.h"
#include "tls/session.h"
#include "tls/types.h"

namespace qtls::tls {

struct ServerCredentials {
  const RsaPrivateKey* rsa_key = nullptr;        // TLS-RSA / *-RSA suites
  const EcKeyPair* ecdsa_p256 = nullptr;         // ECDHE-ECDSA
  const EcKeyPair* ecdsa_p384 = nullptr;
};

struct TlsContextConfig {
  bool is_server = false;
  // Run TLS operations inside fiber async jobs so crypto offload pauses
  // surface as kWantAsync (the QTLS framework). With false, offloaded ops
  // block in place (straight offload) and software ops just compute.
  bool async_mode = false;
  std::vector<CipherSuite> cipher_suites = {
      CipherSuite::kTlsRsaWithAes128CbcSha};
  CurveId curve = CurveId::kP256;
  // Server: issue session tickets (else session-ID cache only).
  bool use_session_tickets = false;
  uint64_t session_lifetime_ms = 3'600'000;
  uint64_t drbg_seed = 0x746c73637478ULL;
};

class TlsContext {
 public:
  TlsContext(TlsContextConfig config, engine::CryptoProvider* provider);

  const TlsContextConfig& config() const { return config_; }
  bool is_server() const { return config_.is_server; }
  engine::CryptoProvider* provider() const { return provider_; }

  ServerCredentials& credentials() { return creds_; }
  const ServerCredentials& credentials() const { return creds_; }

  SessionCache& session_cache() { return session_cache_; }
  const TicketKeeper& tickets() const { return tickets_; }
  HmacDrbg& rng() { return rng_; }

  // Injectable clock (milliseconds) so session expiry is testable.
  void set_clock(std::function<uint64_t()> clock) { clock_ = std::move(clock); }
  uint64_t now_ms() const { return clock_(); }

  // Picks the first mutually supported suite; nullopt on no overlap.
  std::optional<CipherSuite> select_suite(
      const std::vector<CipherSuite>& client_offer) const;

 private:
  TlsContextConfig config_;
  engine::CryptoProvider* provider_;
  ServerCredentials creds_;
  SessionCache session_cache_;
  TicketKeeper tickets_;
  HmacDrbg rng_;
  std::function<uint64_t()> clock_;
};

}  // namespace qtls::tls
