// TlsContext: per-role (server/client) long-lived configuration — the
// SSL_CTX analogue. Owns credentials, cipher preferences, the crypto
// provider binding (software or QAT engine), and a resumption plane
// (session cache + ticket key ring). A standalone context owns a private
// plane; a WorkerPool points every worker's context at one shared plane so
// sessions resume across workers.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "crypto/keystore.h"
#include "engine/provider.h"
#include "tls/session.h"
#include "tls/session_plane.h"
#include "tls/types.h"

namespace qtls::tls {

struct ServerCredentials {
  const RsaPrivateKey* rsa_key = nullptr;        // TLS-RSA / *-RSA suites
  const EcKeyPair* ecdsa_p256 = nullptr;         // ECDHE-ECDSA
  const EcKeyPair* ecdsa_p384 = nullptr;
};

struct TlsContextConfig {
  bool is_server = false;
  // Run TLS operations inside fiber async jobs so crypto offload pauses
  // surface as kWantAsync (the QTLS framework). With false, offloaded ops
  // block in place (straight offload) and software ops just compute.
  bool async_mode = false;
  std::vector<CipherSuite> cipher_suites = {
      CipherSuite::kTlsRsaWithAes128CbcSha};
  CurveId curve = CurveId::kP256;
  // Server: issue session tickets (else session-ID cache only).
  bool use_session_tickets = false;
  uint64_t session_lifetime_ms = 3'600'000;
  // Resumption-plane shape (used when the context builds its own plane; a
  // pool-shared plane is configured by the pool instead).
  size_t session_cache_shards = 16;
  size_t session_cache_capacity = 10'000;
  uint64_t ticket_rotate_interval_ms = 900'000;
  uint32_t ticket_accept_epochs = 1;
  uint64_t drbg_seed = 0x746c73637478ULL;
  // Use the pre-batching coalesced TX record path (single-record seals,
  // flat send buffer). Reference/baseline mode for the data-plane tests
  // and copy-meter comparisons; the default is the iovec-chain batch plane.
  bool legacy_record_dataplane = false;
  // Keep the handshake scratch (transcript, reassembly buffer, key-schedule
  // intermediates) alive after established instead of wiping and releasing
  // it. Baseline mode for the memory benches: bench/million_conn measures
  // idle bytes/connection in both modes to report the shrink factor.
  bool retain_handshake_state = false;
};

class TlsContext {
 public:
  TlsContext(TlsContextConfig config, engine::CryptoProvider* provider);

  const TlsContextConfig& config() const { return config_; }
  bool is_server() const { return config_.is_server; }
  engine::CryptoProvider* provider() const { return provider_; }

  // Setup-time mutable view of the current credential snapshot (the legacy
  // `ctx->credentials().rsa_key = ...` idiom). Mutating through this ref is
  // only safe before connections exist; a running worker swaps credentials
  // with set_credentials() instead.
  ServerCredentials& credentials() { return *creds_; }
  const ServerCredentials& credentials() const { return *creds_; }

  // Hot-reload credential swap (DESIGN.md §15): publishes a fresh snapshot
  // for connections accepted from now on. Each TlsConnection captures the
  // snapshot shared_ptr at construction, so in-flight handshakes finish on
  // the certificate chain they started with — RCU by refcount, no locking.
  // Must run on the thread that owns this context (the worker applies
  // reloads at the top of its own loop).
  void set_credentials(const ServerCredentials& creds) {
    creds_ = std::make_shared<ServerCredentials>(creds);
  }
  std::shared_ptr<const ServerCredentials> credentials_snapshot() const {
    return creds_;
  }

  // Resumption plane: private by default, pool-shared after
  // set_session_plane(). The caller must keep a shared plane alive for the
  // lifetime of every context pointed at it.
  SessionPlane& session_plane() { return *plane_; }
  const SessionPlane& session_plane() const { return *plane_; }
  void set_session_plane(SessionPlane* plane) {
    plane_ = plane != nullptr ? plane : owned_plane_.get();
  }

  ShardedSessionCache& session_cache() { return plane_->cache(); }
  const TicketKeyRing& tickets() const { return plane_->tickets(); }
  HmacDrbg& rng() { return rng_; }

  // Injectable clock (milliseconds) so session expiry is testable.
  void set_clock(std::function<uint64_t()> clock) { clock_ = std::move(clock); }
  uint64_t now_ms() const { return clock_(); }

  // Picks the first mutually supported suite; nullopt on no overlap.
  std::optional<CipherSuite> select_suite(
      const std::vector<CipherSuite>& client_offer) const;

 private:
  TlsContextConfig config_;
  engine::CryptoProvider* provider_;
  std::shared_ptr<ServerCredentials> creds_;
  std::unique_ptr<SessionPlane> owned_plane_;
  SessionPlane* plane_;  // == owned_plane_.get() unless pool-shared
  HmacDrbg rng_;
  std::function<uint64_t()> clock_;
};

}  // namespace qtls::tls
