#include "tls/key_schedule.h"

#include "crypto/kdf.h"

namespace qtls::tls {

Result<Bytes> tls12_master_secret(engine::CryptoProvider* provider,
                                  HashAlg prf, BytesView premaster,
                                  BytesView client_random,
                                  BytesView server_random) {
  Bytes seed(client_random.begin(), client_random.end());
  append(seed, server_random);
  return provider->prf_tls12(prf, premaster, "master secret", seed,
                             kMasterSecretSize);
}

Result<SessionKeys> tls12_key_expansion(engine::CryptoProvider* provider,
                                        const CipherSuiteInfo& suite,
                                        BytesView master,
                                        BytesView client_random,
                                        BytesView server_random) {
  // key_block = PRF(master, "key expansion", server_random + client_random)
  Bytes seed(server_random.begin(), server_random.end());
  append(seed, client_random);
  const size_t need = 2 * suite.mac_key_len + 2 * suite.enc_key_len;
  QTLS_ASSIGN_OR_RETURN(
      Bytes block,
      provider->prf_tls12(suite.prf_hash, master, "key expansion", seed, need));

  SessionKeys keys;
  size_t off = 0;
  auto take = [&](size_t n) {
    Bytes out(block.begin() + static_cast<ptrdiff_t>(off),
              block.begin() + static_cast<ptrdiff_t>(off + n));
    off += n;
    return out;
  };
  keys.client_write.mac_key = take(suite.mac_key_len);
  keys.server_write.mac_key = take(suite.mac_key_len);
  keys.client_write.enc_key = take(suite.enc_key_len);
  keys.server_write.enc_key = take(suite.enc_key_len);
  keys.client_write.mac_alg = suite.mac_alg;
  keys.server_write.mac_alg = suite.mac_alg;
  return keys;
}

Result<Bytes> tls12_finished_verify(engine::CryptoProvider* provider,
                                    HashAlg prf, BytesView master,
                                    const std::string& label,
                                    BytesView transcript_hash) {
  return provider->prf_tls12(prf, master, label, transcript_hash,
                             kVerifyDataSize);
}

// --------------------------------------------------------------- TLS 1.3 ---

Tls13Secrets tls13_handshake_secrets(HashAlg alg, BytesView ecdhe_shared,
                                     BytesView transcript_hash_ch_sh,
                                     BytesView psk) {
  Tls13Secrets s;
  const Bytes zeros(hash_digest_size(alg), 0);
  const Bytes empty_hash = hash(alg, {});

  const Bytes early = hkdf_extract(alg, {}, psk.empty() ? zeros : Bytes(psk.begin(), psk.end()));
  ++s.hkdf_ops;
  const Bytes derived = tls13_derive_secret(alg, early, "derived", empty_hash);
  ++s.hkdf_ops;
  s.handshake_secret = hkdf_extract(alg, derived, ecdhe_shared);
  ++s.hkdf_ops;
  s.client_hs_traffic = tls13_derive_secret(alg, s.handshake_secret,
                                            "c hs traffic",
                                            transcript_hash_ch_sh);
  ++s.hkdf_ops;
  s.server_hs_traffic = tls13_derive_secret(alg, s.handshake_secret,
                                            "s hs traffic",
                                            transcript_hash_ch_sh);
  ++s.hkdf_ops;
  const Bytes derived2 =
      tls13_derive_secret(alg, s.handshake_secret, "derived", empty_hash);
  ++s.hkdf_ops;
  s.master_secret = hkdf_extract(alg, derived2, zeros);
  ++s.hkdf_ops;
  return s;
}

void tls13_application_secrets(HashAlg alg, Tls13Secrets* secrets,
                               BytesView transcript_hash_full) {
  secrets->client_app_traffic = tls13_derive_secret(
      alg, secrets->master_secret, "c ap traffic", transcript_hash_full);
  ++secrets->hkdf_ops;
  secrets->server_app_traffic = tls13_derive_secret(
      alg, secrets->master_secret, "s ap traffic", transcript_hash_full);
  ++secrets->hkdf_ops;
}

AeadKeys tls13_aead_keys(HashAlg alg, BytesView traffic_secret,
                         const CipherSuiteInfo& suite, int* hkdf_ops) {
  AeadKeys keys;
  keys.key =
      hkdf_expand_label(alg, traffic_secret, "key", {}, suite.enc_key_len);
  keys.iv = hkdf_expand_label(alg, traffic_secret, "iv", {}, 12);
  if (hkdf_ops) *hkdf_ops += 2;
  return keys;
}

CbcHmacKeys tls13_traffic_keys(HashAlg alg, BytesView traffic_secret,
                               const CipherSuiteInfo& suite, int* hkdf_ops) {
  CbcHmacKeys keys;
  keys.enc_key =
      hkdf_expand_label(alg, traffic_secret, "key", {}, suite.enc_key_len);
  keys.mac_key =
      hkdf_expand_label(alg, traffic_secret, "mac", {}, suite.mac_key_len);
  keys.mac_alg = suite.mac_alg;
  if (hkdf_ops) *hkdf_ops += 2;
  return keys;
}

Bytes tls13_resumption_master(HashAlg alg, BytesView master_secret,
                              BytesView transcript_hash_full, int* hkdf_ops) {
  if (hkdf_ops) ++*hkdf_ops;
  return tls13_derive_secret(alg, master_secret, "res master",
                             transcript_hash_full);
}

Bytes tls13_finished_verify(HashAlg alg, BytesView traffic_secret,
                            BytesView transcript_hash, int* hkdf_ops) {
  const Bytes finished_key = hkdf_expand_label(alg, traffic_secret, "finished",
                                               {}, hash_digest_size(alg));
  if (hkdf_ops) *hkdf_ops += 1;
  return hmac(alg, finished_key, transcript_hash);
}

// --- Established-state release ---------------------------------------------

void wipe_key_schedule(Bytes& b) {
  secure_wipe(b.data(), b.size());
  b.clear();
  b.shrink_to_fit();
}

void wipe_key_schedule(CbcHmacKeys& k) {
  wipe_key_schedule(k.enc_key);
  wipe_key_schedule(k.mac_key);
}

void wipe_key_schedule(AeadKeys& k) {
  wipe_key_schedule(k.key);
  wipe_key_schedule(k.iv);
}

void wipe_key_schedule(SessionKeys& k) {
  wipe_key_schedule(k.client_write);
  wipe_key_schedule(k.server_write);
}

void wipe_key_schedule(Tls13Secrets& s) {
  wipe_key_schedule(s.handshake_secret);
  wipe_key_schedule(s.client_hs_traffic);
  wipe_key_schedule(s.server_hs_traffic);
  wipe_key_schedule(s.master_secret);
  wipe_key_schedule(s.client_app_traffic);
  wipe_key_schedule(s.server_app_traffic);
}

}  // namespace qtls::tls
