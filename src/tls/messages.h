// Handshake message encodings. Framing is standard TLS (1-byte type, 24-bit
// length); bodies are TLS-shaped but simplified (no X.509 — the Certificate
// message carries a raw public key; a single named curve instead of a list).
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/rsa.h"
#include "tls/types.h"

namespace qtls::tls {

// type + u24 length framing.
Bytes frame_handshake(HandshakeType type, BytesView body);

struct HandshakeHeader {
  HandshakeType type;
  Bytes body;
};
// Parses one framed message from `data`, advancing `*consumed`.
Result<HandshakeHeader> parse_handshake(BytesView data, size_t* consumed);

// --------------------------------------------------------------------------

struct ClientHello {
  ProtocolVersion version = ProtocolVersion::kTls12;
  Bytes random;                         // 32 bytes
  Bytes session_id;                     // empty or 32 bytes (resumption)
  std::vector<CipherSuite> cipher_suites;
  CurveId curve = CurveId::kP256;       // offered ECDHE group
  Bytes session_ticket;                 // empty = no ticket extension
  // TLS 1.3 key share (empty when offering 1.2 only).
  Bytes key_share;

  Bytes encode() const;
  static Result<ClientHello> parse(BytesView body);
};

struct ServerHello {
  ProtocolVersion version = ProtocolVersion::kTls12;
  Bytes random;
  Bytes session_id;
  CipherSuite cipher_suite = CipherSuite::kTlsRsaWithAes128CbcSha;
  bool resumed = false;
  Bytes key_share;  // TLS 1.3

  Bytes encode() const;
  static Result<ServerHello> parse(BytesView body);
};

enum class CredentialType : uint8_t { kRsa = 0, kEcdsaP256 = 1, kEcdsaP384 = 2 };

// Simplified certificate: the server's raw public key.
struct CertificateMsg {
  CredentialType cred_type = CredentialType::kRsa;
  Bytes public_key;  // RSA: u16 n_len || n || u16 e_len || e; EC: SEC1 point

  Bytes encode() const;
  static Result<CertificateMsg> parse(BytesView body);

  static Bytes encode_rsa_key(const RsaPublicKey& key);
  static Result<RsaPublicKey> decode_rsa_key(BytesView blob);
};

struct ServerKeyExchange {
  CurveId curve = CurveId::kP256;
  Bytes point;      // server ephemeral public point
  Bytes signature;  // over client_random || server_random || curve || point

  Bytes encode() const;
  static Result<ServerKeyExchange> parse(BytesView body);
  // The digest the signature covers.
  static Bytes signed_digest(HashAlg alg, BytesView client_random,
                             BytesView server_random, CurveId curve,
                             BytesView point);
};

struct ClientKeyExchange {
  // RSA kx: encrypted premaster; ECDHE kx: client ephemeral point.
  Bytes exchange_data;

  Bytes encode() const;
  static Result<ClientKeyExchange> parse(BytesView body);
};

struct FinishedMsg {
  Bytes verify_data;

  Bytes encode() const { return verify_data; }
  static Result<FinishedMsg> parse(BytesView body) {
    return FinishedMsg{Bytes(body.begin(), body.end())};
  }
};

struct NewSessionTicketMsg {
  uint32_t lifetime_seconds = 3600;
  Bytes ticket;

  Bytes encode() const;
  static Result<NewSessionTicketMsg> parse(BytesView body);
};

struct CertificateVerifyMsg {  // TLS 1.3
  Bytes signature;

  Bytes encode() const;
  static Result<CertificateVerifyMsg> parse(BytesView body);
};

}  // namespace qtls::tls
