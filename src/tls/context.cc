#include "tls/context.h"

#include <chrono>

namespace qtls::tls {

namespace {
Bytes seed_bytes(uint64_t seed, const char* tag) {
  Bytes out;
  append_u64(out, seed);
  append(out, to_bytes(tag));
  return out;
}

uint64_t steady_now_ms() {
  using namespace std::chrono;
  return static_cast<uint64_t>(
      duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
          .count());
}

SessionPlaneConfig plane_config_of(const TlsContextConfig& config) {
  SessionPlaneConfig plane;
  plane.cache_shards = config.session_cache_shards;
  plane.cache_capacity = config.session_cache_capacity;
  plane.lifetime_ms = config.session_lifetime_ms;
  plane.ticket_rotate_interval_ms = config.ticket_rotate_interval_ms;
  plane.ticket_accept_epochs = config.ticket_accept_epochs;
  plane.seed = config.drbg_seed;
  return plane;
}
}  // namespace

TlsContext::TlsContext(TlsContextConfig config,
                       engine::CryptoProvider* provider)
    : config_(std::move(config)),
      provider_(provider),
      creds_(std::make_shared<ServerCredentials>()),
      owned_plane_(std::make_unique<SessionPlane>(plane_config_of(config_))),
      plane_(owned_plane_.get()),
      rng_(HashAlg::kSha256, seed_bytes(config_.drbg_seed, "ctx-rng")),
      clock_(steady_now_ms) {}

std::optional<CipherSuite> TlsContext::select_suite(
    const std::vector<CipherSuite>& client_offer) const {
  for (CipherSuite mine : config_.cipher_suites) {
    for (CipherSuite theirs : client_offer) {
      if (mine == theirs) return mine;
    }
  }
  return std::nullopt;
}

const CipherSuiteInfo& cipher_suite_info(CipherSuite suite) {
  static const CipherSuiteInfo kTable[] = {
      {CipherSuite::kTlsRsaWithAes128CbcSha, "TLS-RSA-AES128-SHA",
       KeyExchange::kRsa, HashAlg::kSha256, HashAlg::kSha1, 16, 20, false},
      {CipherSuite::kEcdheRsaWithAes128CbcSha, "ECDHE-RSA-AES128-SHA",
       KeyExchange::kEcdheRsa, HashAlg::kSha256, HashAlg::kSha1, 16, 20,
       false},
      {CipherSuite::kEcdheEcdsaWithAes128CbcSha, "ECDHE-ECDSA-AES128-SHA",
       KeyExchange::kEcdheEcdsa, HashAlg::kSha256, HashAlg::kSha1, 16, 20,
       false},
      {CipherSuite::kTls13Aes128Sha256, "TLS13-ECDHE-RSA-AES128",
       KeyExchange::kEcdheRsa, HashAlg::kSha256, HashAlg::kSha1, 16, 20,
       true},
  };
  for (const auto& info : kTable) {
    if (info.id == suite) return info;
  }
  return kTable[0];
}

const char* tls_result_name(TlsResult r) {
  switch (r) {
    case TlsResult::kOk: return "OK";
    case TlsResult::kWantRead: return "WANT_READ";
    case TlsResult::kWantWrite: return "WANT_WRITE";
    case TlsResult::kWantAsync: return "WANT_ASYNC";
    case TlsResult::kClosed: return "CLOSED";
    case TlsResult::kError: return "ERROR";
  }
  return "?";
}

const char* alert_description_name(AlertDescription d) {
  switch (d) {
    case AlertDescription::kCloseNotify: return "close_notify";
    case AlertDescription::kUnexpectedMessage: return "unexpected_message";
    case AlertDescription::kBadRecordMac: return "bad_record_mac";
    case AlertDescription::kRecordOverflow: return "record_overflow";
    case AlertDescription::kDecodeError: return "decode_error";
    case AlertDescription::kInternalError: return "internal_error";
    case AlertDescription::kUserCanceled: return "user_canceled";
  }
  return "?";
}

}  // namespace qtls::tls
