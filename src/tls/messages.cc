#include "tls/messages.h"

#include "crypto/hash.h"

namespace qtls::tls {

Bytes frame_handshake(HandshakeType type, BytesView body) {
  Bytes out;
  out.reserve(4 + body.size());
  append_u8(out, static_cast<uint8_t>(type));
  append_u24(out, static_cast<uint32_t>(body.size()));
  append(out, body);
  return out;
}

Result<HandshakeHeader> parse_handshake(BytesView data, size_t* consumed) {
  if (data.size() < 4)
    return err(Code::kProtocolError, "truncated handshake header");
  ByteReader r(data);
  const auto type = static_cast<HandshakeType>(r.u8());
  const uint32_t len = r.u24();
  if (data.size() < 4 + len)
    return err(Code::kProtocolError, "truncated handshake body");
  HandshakeHeader h;
  h.type = type;
  h.body = r.bytes(len);
  *consumed = 4 + len;
  return h;
}

// ---------------------------------------------------------------- hello ----

Bytes ClientHello::encode() const {
  Bytes out;
  append_u16(out, static_cast<uint16_t>(version));
  append(out, random);
  append_u8(out, static_cast<uint8_t>(session_id.size()));
  append(out, session_id);
  append_u16(out, static_cast<uint16_t>(cipher_suites.size() * 2));
  for (CipherSuite s : cipher_suites) append_u16(out, static_cast<uint16_t>(s));
  append_u8(out, static_cast<uint8_t>(curve));
  append_u16(out, static_cast<uint16_t>(session_ticket.size()));
  append(out, session_ticket);
  append_u16(out, static_cast<uint16_t>(key_share.size()));
  append(out, key_share);
  return out;
}

Result<ClientHello> ClientHello::parse(BytesView body) {
  ByteReader r(body);
  ClientHello h;
  h.version = static_cast<ProtocolVersion>(r.u16());
  h.random = r.bytes(kRandomSize);
  h.session_id = r.bytes(r.u8());
  const uint16_t suites_len = r.u16();
  if (suites_len % 2 != 0)
    return err(Code::kProtocolError, "odd cipher suite length");
  for (int i = 0; i < suites_len / 2; ++i)
    h.cipher_suites.push_back(static_cast<CipherSuite>(r.u16()));
  h.curve = static_cast<CurveId>(r.u8());
  h.session_ticket = r.bytes(r.u16());
  h.key_share = r.bytes(r.u16());
  if (!r.ok() || r.remaining() != 0)
    return err(Code::kProtocolError, "malformed ClientHello");
  return h;
}

Bytes ServerHello::encode() const {
  Bytes out;
  append_u16(out, static_cast<uint16_t>(version));
  append(out, random);
  append_u8(out, static_cast<uint8_t>(session_id.size()));
  append(out, session_id);
  append_u16(out, static_cast<uint16_t>(cipher_suite));
  append_u8(out, resumed ? 1 : 0);
  append_u16(out, static_cast<uint16_t>(key_share.size()));
  append(out, key_share);
  return out;
}

Result<ServerHello> ServerHello::parse(BytesView body) {
  ByteReader r(body);
  ServerHello h;
  h.version = static_cast<ProtocolVersion>(r.u16());
  h.random = r.bytes(kRandomSize);
  h.session_id = r.bytes(r.u8());
  h.cipher_suite = static_cast<CipherSuite>(r.u16());
  h.resumed = r.u8() != 0;
  h.key_share = r.bytes(r.u16());
  if (!r.ok() || r.remaining() != 0)
    return err(Code::kProtocolError, "malformed ServerHello");
  return h;
}

// ---------------------------------------------------------- certificate ----

Bytes CertificateMsg::encode() const {
  Bytes out;
  append_u8(out, static_cast<uint8_t>(cred_type));
  append_u16(out, static_cast<uint16_t>(public_key.size()));
  append(out, public_key);
  return out;
}

Result<CertificateMsg> CertificateMsg::parse(BytesView body) {
  ByteReader r(body);
  CertificateMsg m;
  m.cred_type = static_cast<CredentialType>(r.u8());
  m.public_key = r.bytes(r.u16());
  if (!r.ok() || r.remaining() != 0)
    return err(Code::kProtocolError, "malformed Certificate");
  return m;
}

Bytes CertificateMsg::encode_rsa_key(const RsaPublicKey& key) {
  Bytes out;
  const Bytes n = key.n.to_bytes_be();
  const Bytes e = key.e.to_bytes_be();
  append_u16(out, static_cast<uint16_t>(n.size()));
  append(out, n);
  append_u16(out, static_cast<uint16_t>(e.size()));
  append(out, e);
  return out;
}

Result<RsaPublicKey> CertificateMsg::decode_rsa_key(BytesView blob) {
  ByteReader r(blob);
  RsaPublicKey key;
  key.n = Bignum::from_bytes_be(r.bytes(r.u16()));
  key.e = Bignum::from_bytes_be(r.bytes(r.u16()));
  if (!r.ok() || key.n.is_zero() || key.e.is_zero())
    return err(Code::kProtocolError, "malformed RSA key");
  return key;
}

// ------------------------------------------------------- key exchange ----

Bytes ServerKeyExchange::encode() const {
  Bytes out;
  append_u8(out, static_cast<uint8_t>(curve));
  append_u16(out, static_cast<uint16_t>(point.size()));
  append(out, point);
  append_u16(out, static_cast<uint16_t>(signature.size()));
  append(out, signature);
  return out;
}

Result<ServerKeyExchange> ServerKeyExchange::parse(BytesView body) {
  ByteReader r(body);
  ServerKeyExchange m;
  m.curve = static_cast<CurveId>(r.u8());
  m.point = r.bytes(r.u16());
  m.signature = r.bytes(r.u16());
  if (!r.ok() || r.remaining() != 0)
    return err(Code::kProtocolError, "malformed ServerKeyExchange");
  return m;
}

Bytes ServerKeyExchange::signed_digest(HashAlg alg, BytesView client_random,
                                       BytesView server_random, CurveId curve,
                                       BytesView point) {
  auto ctx = make_hash(alg);
  ctx->update(client_random);
  ctx->update(server_random);
  const uint8_t c = static_cast<uint8_t>(curve);
  ctx->update(BytesView(&c, 1));
  ctx->update(point);
  return ctx->finish();
}

Bytes ClientKeyExchange::encode() const {
  Bytes out;
  append_u16(out, static_cast<uint16_t>(exchange_data.size()));
  append(out, exchange_data);
  return out;
}

Result<ClientKeyExchange> ClientKeyExchange::parse(BytesView body) {
  ByteReader r(body);
  ClientKeyExchange m;
  m.exchange_data = r.bytes(r.u16());
  if (!r.ok() || r.remaining() != 0)
    return err(Code::kProtocolError, "malformed ClientKeyExchange");
  return m;
}

// ------------------------------------------------------------- tickets ----

Bytes NewSessionTicketMsg::encode() const {
  Bytes out;
  append_u32(out, lifetime_seconds);
  append_u16(out, static_cast<uint16_t>(ticket.size()));
  append(out, ticket);
  return out;
}

Result<NewSessionTicketMsg> NewSessionTicketMsg::parse(BytesView body) {
  ByteReader r(body);
  NewSessionTicketMsg m;
  m.lifetime_seconds = r.u32();
  m.ticket = r.bytes(r.u16());
  if (!r.ok() || r.remaining() != 0)
    return err(Code::kProtocolError, "malformed NewSessionTicket");
  return m;
}

Bytes CertificateVerifyMsg::encode() const {
  Bytes out;
  append_u16(out, static_cast<uint16_t>(signature.size()));
  append(out, signature);
  return out;
}

Result<CertificateVerifyMsg> CertificateVerifyMsg::parse(BytesView body) {
  ByteReader r(body);
  CertificateVerifyMsg m;
  m.signature = r.bytes(r.u16());
  if (!r.ok() || r.remaining() != 0)
    return err(Code::kProtocolError, "malformed CertificateVerify");
  return m;
}

}  // namespace qtls::tls
