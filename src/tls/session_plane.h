// The process-wide resumption plane (DESIGN.md §9): the shared state that
// lets a session established on worker 0 resume on worker 3.
//
//  * ShardedSessionCache — N shards (power of two, default 16) keyed by the
//    low bits of a session-ID hash; each shard is one mutex around the
//    single-threaded SessionCache. Hit/miss/evict totals are relaxed
//    atomics, mirrored into the src/obs metrics registry so /stats and the
//    BENCH_JSON harvest see them.
//  * TicketKeyRing — epoch-numbered ticket keys replacing the single-key
//    TicketKeeper. Every sealed ticket is prefixed with the 16-byte key
//    name of its sealing epoch (the RFC 5077 key_name field); unseal
//    accepts the current epoch plus `accept_epochs` previous ones and
//    reports whether a re-seal under the current key is due. Rotation is
//    background-free: the epoch is a pure function of the caller's clock
//    (now_ms / rotate_interval_ms), and every epoch's keys derive
//    deterministically from the seed, so all workers — and the virtual-time
//    sim backend — agree on the ring without coordination.
//  * SessionPlane — bundles the two with their config; a WorkerPool owns
//    one and points every worker's TlsContext at it.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "tls/session.h"

namespace qtls::tls {

struct SessionPlaneConfig {
  size_t cache_shards = 16;        // rounded up to a power of two
  size_t cache_capacity = 10'000;  // entries per shard ceiling: capacity/shards
  uint64_t lifetime_ms = 3'600'000;
  // 0 disables rotation (single epoch 0, still key-name prefixed).
  uint64_t ticket_rotate_interval_ms = 900'000;
  uint32_t ticket_accept_epochs = 1;  // current + N previous keys accepted
  uint64_t seed = 0x746c73637478ULL;
};

// Thread-safe LRU+TTL session-ID cache: striped mutexes over SessionCache
// shards. Any worker may put/get/remove concurrently.
class ShardedSessionCache {
 public:
  ShardedSessionCache(size_t shards, size_t capacity, uint64_t lifetime_ms);

  void put(const Bytes& session_id, SessionState state, uint64_t now_ms);
  std::optional<SessionState> get(const Bytes& session_id, uint64_t now_ms);
  void remove(const Bytes& session_id);

  size_t size() const;  // sum over shards (racy-but-consistent per shard)
  size_t shards() const { return shards_.size(); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  // Same taxonomy as SessionCache; with all mutators quiesced,
  //   inserts == size + evictions + expirations + removes
  // holds exactly (each shard op diffs the shard's counters under its lock
  // and folds them into these totals).
  uint64_t inserts() const { return inserts_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t expirations() const {
    return expirations_.load(std::memory_order_relaxed);
  }
  uint64_t removes() const { return removes_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    std::mutex mu;
    SessionCache cache;
    Shard(size_t capacity, uint64_t lifetime_ms)
        : cache(capacity, lifetime_ms) {}
  };

  Shard& shard_of(const Bytes& session_id);

  // Folds the change in a shard's insert/evict/expire/remove counters
  // (observed across one locked operation) into the atomic totals.
  struct ShardDelta;
  void fold_delta(const ShardDelta& before, const SessionCache& after);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> expirations_{0};
  std::atomic<uint64_t> removes_{0};
  obs::Counter hit_metric_;
  obs::Counter miss_metric_;
  obs::Counter insert_metric_;
  obs::Counter evict_metric_;
  obs::Counter expire_metric_;
};

// Rotating ticket-key ring. Sealed ticket layout (RFC 5077 shape):
//   key_name(16) || iv(16) || ciphertext || hmac(32)
// The key name selects the epoch; a wrong or retired name never reaches the
// MAC check. Epoch keys are derived on demand from (seed, epoch), cached,
// and pruned, so the ring needs no rotation thread and any worker can
// unseal a ticket sealed by any other.
class TicketKeyRing {
 public:
  static constexpr size_t kKeyNameLen = 16;

  TicketKeyRing(BytesView seed, uint64_t rotate_interval_ms,
                uint32_t accept_epochs, uint64_t lifetime_ms);

  uint64_t epoch_at(uint64_t now_ms) const {
    return rotate_interval_ms_ == 0 ? 0 : now_ms / rotate_interval_ms_;
  }
  // The 16-byte RFC 5077 key name of an epoch (deterministic).
  Bytes key_name(uint64_t epoch) const;

  // Seals under the CURRENT epoch's key (so a re-seal on resumption is an
  // epoch bump for free).
  Bytes seal(const SessionState& state, uint64_t now_ms,
             HmacDrbg& iv_rng) const;

  struct Unsealed {
    SessionState state;
    uint64_t epoch = 0;    // sealing epoch
    bool current = false;  // sealed under the current epoch's key
  };
  // Fails on tamper, lifetime expiry, or a key name outside the accept
  // window [current - accept_epochs, current].
  Result<Unsealed> unseal(BytesView ticket, uint64_t now_ms) const;

  uint64_t seals() const { return seals_.load(std::memory_order_relaxed); }
  uint64_t unseal_ok() const {
    return unseal_ok_.load(std::memory_order_relaxed);
  }
  uint64_t unseal_old_epoch() const {
    return unseal_old_epoch_.load(std::memory_order_relaxed);
  }
  uint64_t unseal_rejects() const {
    return unseal_rejects_.load(std::memory_order_relaxed);
  }
  uint64_t lifetime_ms() const { return lifetime_ms_; }
  uint64_t rotate_interval_ms() const { return rotate_interval_ms_; }
  uint32_t accept_epochs() const { return accept_epochs_; }

 private:
  struct EpochKey {
    Bytes name;
    TicketKeeper keeper;
    EpochKey(Bytes n, BytesView seed, uint64_t lifetime_ms)
        : name(std::move(n)), keeper(seed, lifetime_ms) {}
  };

  // Derive-or-fetch the epoch's key material (mutex; shared_ptr keeps a key
  // alive for in-flight seal/unseal while pruning retires old map entries).
  std::shared_ptr<const EpochKey> key_for(uint64_t epoch) const;

  Bytes seed_;
  uint64_t rotate_interval_ms_;
  uint32_t accept_epochs_;
  uint64_t lifetime_ms_;

  mutable std::mutex mu_;
  mutable std::map<uint64_t, std::shared_ptr<const EpochKey>> keys_;

  mutable std::atomic<uint64_t> seals_{0};
  mutable std::atomic<uint64_t> unseal_ok_{0};
  mutable std::atomic<uint64_t> unseal_old_epoch_{0};
  mutable std::atomic<uint64_t> unseal_rejects_{0};
  mutable obs::Counter seal_metric_;
  mutable obs::Counter unseal_ok_metric_;
  mutable obs::Counter unseal_old_epoch_metric_;
  mutable obs::Counter unseal_reject_metric_;
};

// One resumption plane = one sharded cache + one key ring. A WorkerPool
// owns a single instance shared by every worker's TlsContext; a standalone
// TlsContext owns a private one.
class SessionPlane {
 public:
  explicit SessionPlane(const SessionPlaneConfig& config);

  ShardedSessionCache& cache() { return cache_; }
  const ShardedSessionCache& cache() const { return cache_; }
  const TicketKeyRing& tickets() const { return ring_; }
  const SessionPlaneConfig& config() const { return config_; }

  // The GET /stats "session" object.
  std::string stats_json(uint64_t now_ms) const;

 private:
  SessionPlaneConfig config_;
  ShardedSessionCache cache_;
  TicketKeyRing ring_;
};

}  // namespace qtls::tls
