#include "tls/session_plane.h"

#include <sstream>

#include "crypto/hash.h"

namespace qtls::tls {

namespace {

// FNV-1a over the session id; the low bits pick the shard.
uint64_t fnv1a(BytesView data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

size_t round_up_pow2(size_t n) {
  if (n < 1) return 1;
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ------------------------------------------------------- sharded cache ----

ShardedSessionCache::ShardedSessionCache(size_t shards, size_t capacity,
                                         uint64_t lifetime_ms)
    : hit_metric_(obs::MetricsRegistry::global().counter("tls.session.hit")),
      miss_metric_(obs::MetricsRegistry::global().counter("tls.session.miss")),
      insert_metric_(
          obs::MetricsRegistry::global().counter("tls.session.insert")),
      evict_metric_(
          obs::MetricsRegistry::global().counter("tls.session.evict")),
      expire_metric_(
          obs::MetricsRegistry::global().counter("tls.session.expire")) {
  const size_t n = round_up_pow2(shards);
  // Split the total capacity across shards (ceiling, so shards*per >= total
  // and a capacity below the shard count still holds at least one entry per
  // shard unless the cache is disabled outright).
  const size_t per_shard = capacity == 0 ? 0 : (capacity + n - 1) / n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>(per_shard, lifetime_ms));
}

ShardedSessionCache::Shard& ShardedSessionCache::shard_of(
    const Bytes& session_id) {
  return *shards_[fnv1a(session_id) & (shards_.size() - 1)];
}

struct ShardedSessionCache::ShardDelta {
  uint64_t inserts;
  uint64_t evictions;
  uint64_t expirations;
  uint64_t removes;
  explicit ShardDelta(const SessionCache& c)
      : inserts(c.inserts()),
        evictions(c.evictions()),
        expirations(c.expirations()),
        removes(c.removes()) {}
};

void ShardedSessionCache::fold_delta(const ShardDelta& before,
                                     const SessionCache& after) {
  // Every path that changes shard occupancy folds ALL the accounting
  // counters, not just the one it expects to move: a put can expire
  // (expired-first probe) OR evict, a get can expire. Diffing only
  // evictions here was the under-count the conservation test caught.
  if (uint64_t d = after.inserts() - before.inserts) {
    inserts_.fetch_add(d, std::memory_order_relaxed);
    insert_metric_.add(static_cast<int64_t>(d));
  }
  if (uint64_t d = after.evictions() - before.evictions) {
    evictions_.fetch_add(d, std::memory_order_relaxed);
    evict_metric_.add(static_cast<int64_t>(d));
  }
  if (uint64_t d = after.expirations() - before.expirations) {
    expirations_.fetch_add(d, std::memory_order_relaxed);
    expire_metric_.add(static_cast<int64_t>(d));
  }
  if (uint64_t d = after.removes() - before.removes)
    removes_.fetch_add(d, std::memory_order_relaxed);
}

void ShardedSessionCache::put(const Bytes& session_id, SessionState state,
                              uint64_t now_ms) {
  Shard& shard = shard_of(session_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const ShardDelta before(shard.cache);
  shard.cache.put(session_id, std::move(state), now_ms);
  fold_delta(before, shard.cache);
}

std::optional<SessionState> ShardedSessionCache::get(const Bytes& session_id,
                                                     uint64_t now_ms) {
  Shard& shard = shard_of(session_id);
  std::optional<SessionState> out;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const ShardDelta before(shard.cache);
    out = shard.cache.get(session_id, now_ms);
    fold_delta(before, shard.cache);
  }
  if (out.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_metric_.inc();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_metric_.inc();
  }
  return out;
}

void ShardedSessionCache::remove(const Bytes& session_id) {
  Shard& shard = shard_of(session_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const ShardDelta before(shard.cache);
  shard.cache.remove(session_id);
  fold_delta(before, shard.cache);
}

size_t ShardedSessionCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->cache.size();
  }
  return total;
}

// ------------------------------------------------------------ key ring ----

TicketKeyRing::TicketKeyRing(BytesView seed, uint64_t rotate_interval_ms,
                             uint32_t accept_epochs, uint64_t lifetime_ms)
    : seed_(seed.begin(), seed.end()),
      rotate_interval_ms_(rotate_interval_ms),
      accept_epochs_(accept_epochs),
      lifetime_ms_(lifetime_ms),
      seal_metric_(obs::MetricsRegistry::global().counter("tls.ticket.seal")),
      unseal_ok_metric_(
          obs::MetricsRegistry::global().counter("tls.ticket.unseal_ok")),
      unseal_old_epoch_metric_(
          obs::MetricsRegistry::global().counter("tls.ticket.old_epoch")),
      unseal_reject_metric_(
          obs::MetricsRegistry::global().counter("tls.ticket.reject")) {}

std::shared_ptr<const TicketKeyRing::EpochKey> TicketKeyRing::key_for(
    uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(epoch);
  if (it != keys_.end()) return it->second;

  // Per-epoch material: seed || epoch. The key name and the keeper's
  // enc/mac keys all derive from it, deterministically across workers and
  // across the sim backend (no RNG involved).
  Bytes material = seed_;
  append_u64(material, epoch);
  const Bytes prk =
      hkdf_extract(HashAlg::kSha256, to_bytes("qtls-ticket-ring"), material);
  Bytes name = hkdf_expand(HashAlg::kSha256, prk, to_bytes("name"),
                           kKeyNameLen);
  auto key = std::make_shared<const EpochKey>(std::move(name), material,
                                              lifetime_ms_);
  keys_.emplace(epoch, key);
  // Prune retired epochs; in-flight users hold shared_ptrs. Keep a window
  // comfortably wider than the accept range.
  const size_t keep = static_cast<size_t>(accept_epochs_) + 4;
  while (keys_.size() > keep) keys_.erase(keys_.begin());
  return key;
}

Bytes TicketKeyRing::key_name(uint64_t epoch) const {
  return key_for(epoch)->name;
}

Bytes TicketKeyRing::seal(const SessionState& state, uint64_t now_ms,
                          HmacDrbg& iv_rng) const {
  const auto key = key_for(epoch_at(now_ms));
  Bytes ticket = key->name;
  append(ticket, key->keeper.seal(state, now_ms, iv_rng));
  seals_.fetch_add(1, std::memory_order_relaxed);
  seal_metric_.inc();
  return ticket;
}

Result<TicketKeyRing::Unsealed> TicketKeyRing::unseal(BytesView ticket,
                                                      uint64_t now_ms) const {
  if (ticket.size() < kKeyNameLen) {
    unseal_rejects_.fetch_add(1, std::memory_order_relaxed);
    unseal_reject_metric_.inc();
    return err(Code::kCryptoError, "ticket shorter than key name");
  }
  const BytesView name = ticket.subspan(0, kKeyNameLen);
  const uint64_t current = epoch_at(now_ms);
  const uint64_t min_epoch =
      current > accept_epochs_ ? current - accept_epochs_ : 0;
  for (uint64_t epoch = current + 1; epoch-- > min_epoch;) {
    const auto key = key_for(epoch);
    if (!ct_equal(name, key->name)) continue;
    auto state = key->keeper.unseal(ticket.subspan(kKeyNameLen), now_ms);
    if (!state.is_ok()) {
      unseal_rejects_.fetch_add(1, std::memory_order_relaxed);
      unseal_reject_metric_.inc();
      return state.status();
    }
    Unsealed out;
    out.state = std::move(state).take();
    out.epoch = epoch;
    out.current = epoch == current;
    unseal_ok_.fetch_add(1, std::memory_order_relaxed);
    unseal_ok_metric_.inc();
    if (!out.current) {
      unseal_old_epoch_.fetch_add(1, std::memory_order_relaxed);
      unseal_old_epoch_metric_.inc();
    }
    return out;
  }
  // Unknown name: sealed under a retired epoch (or another server's ring).
  unseal_rejects_.fetch_add(1, std::memory_order_relaxed);
  unseal_reject_metric_.inc();
  return err(Code::kFailedPrecondition, "ticket key epoch not accepted");
}

// --------------------------------------------------------------- plane ----

SessionPlane::SessionPlane(const SessionPlaneConfig& config)
    : config_(config),
      cache_(config.cache_shards, config.cache_capacity, config.lifetime_ms),
      ring_(
          [&config] {
            Bytes seed;
            append_u64(seed, config.seed);
            append(seed, to_bytes("session-plane"));
            return seed;
          }(),
          config.ticket_rotate_interval_ms, config.ticket_accept_epochs,
          config.lifetime_ms) {}

std::string SessionPlane::stats_json(uint64_t now_ms) const {
  std::ostringstream os;
  os << "{\"cache_shards\":" << cache_.shards()
     << ",\"cache_size\":" << cache_.size()
     << ",\"cache_hits\":" << cache_.hits()
     << ",\"cache_misses\":" << cache_.misses()
     << ",\"cache_inserts\":" << cache_.inserts()
     << ",\"cache_evictions\":" << cache_.evictions()
     << ",\"cache_expirations\":" << cache_.expirations()
     << ",\"ticket_epoch\":" << ring_.epoch_at(now_ms)
     << ",\"tickets_sealed\":" << ring_.seals()
     << ",\"tickets_unsealed\":" << ring_.unseal_ok()
     << ",\"tickets_old_epoch\":" << ring_.unseal_old_epoch()
     << ",\"tickets_rejected\":" << ring_.unseal_rejects() << "}";
  return os.str();
}

}  // namespace qtls::tls
