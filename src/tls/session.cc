#include "tls/session.h"

#include "crypto/aes.h"
#include "crypto/hash.h"

namespace qtls::tls {

namespace {
std::string key_of(const Bytes& id) {
  return std::string(id.begin(), id.end());
}

// Bounded probe window for expired-first eviction (see evict_one).
constexpr int kEvictProbes = 8;
}  // namespace

void SessionCache::evict_one(uint64_t now_ms) {
  if (lru_.empty()) return;
  // Prefer evicting an expired entry over the LRU-tail live one. Expired
  // entries drift toward the tail (get() removes any it touches and
  // refreshes live ones), so a bounded probe from the tail finds them
  // without an O(n) sweep on every insert.
  auto victim = std::prev(lru_.end());
  bool victim_expired = false;
  int probes = kEvictProbes;
  for (auto rit = lru_.rbegin(); rit != lru_.rend() && probes-- > 0; ++rit) {
    if (expired(map_.find(*rit)->second.state, now_ms)) {
      victim = std::prev(rit.base());
      victim_expired = true;
      break;
    }
  }
  map_.erase(*victim);
  lru_.erase(victim);
  // An expired victim is an EXPIRATION, not an eviction: the probe merely
  // reclaimed it early. Counting it as an eviction broke the conservation
  // invariant (inserts == size + evictions + expirations + removes) — the
  // sharded front-end diffs these per call, so misclassifying here
  // under-counted expirations fleet-wide.
  if (victim_expired) {
    ++expirations_;
  } else {
    ++evictions_;
  }
}

void SessionCache::put(const Bytes& session_id, SessionState state,
                       uint64_t now_ms) {
  if (capacity_ == 0) return;  // cache disabled: never hold an entry
  state.created_at_ms = now_ms;
  const std::string key = key_of(session_id);
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second = Entry{std::move(state), lru_.begin()};
    return;
  }
  if (map_.size() >= capacity_) evict_one(now_ms);
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(state), lru_.begin()});
  ++inserts_;
}

std::optional<SessionState> SessionCache::get(const Bytes& session_id,
                                              uint64_t now_ms) {
  auto it = map_.find(key_of(session_id));
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  const SessionState& state = it->second.state;
  if (expired(state, now_ms)) {
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    ++misses_;
    ++expirations_;  // the entry left the cache; the read is still a miss
    return std::nullopt;
  }
  // Refresh LRU position.
  lru_.erase(it->second.lru_it);
  lru_.push_front(it->first);
  it->second.lru_it = lru_.begin();
  ++hits_;
  return state;
}

void SessionCache::remove(const Bytes& session_id) {
  auto it = map_.find(key_of(session_id));
  if (it == map_.end()) return;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
  ++removes_;
}

TicketKeeper::TicketKeeper(BytesView key_seed, uint64_t lifetime_ms)
    : lifetime_ms_(lifetime_ms) {
  // Derive independent enc/mac keys from the seed.
  Bytes salt = to_bytes("qtls-ticket-key");
  const Bytes prk = hkdf_extract(HashAlg::kSha256, salt, key_seed);
  enc_key_ = hkdf_expand(HashAlg::kSha256, prk, to_bytes("enc"), 16);
  mac_key_ = hkdf_expand(HashAlg::kSha256, prk, to_bytes("mac"), 32);
}

Bytes TicketKeeper::seal(const SessionState& state, uint64_t now_ms,
                         HmacDrbg& iv_rng) const {
  // A refreshed ticket (resumption) carries the ORIGINAL creation time so
  // the total master-secret lifetime stays capped; only genuinely new state
  // (created_at_ms == 0) is stamped with now.
  const uint64_t created_at =
      state.created_at_ms != 0 ? state.created_at_ms : now_ms;
  Bytes plain;
  append_u16(plain, static_cast<uint16_t>(state.suite));
  append_u64(plain, created_at);
  append_u16(plain, static_cast<uint16_t>(state.master_secret.size()));
  append(plain, state.master_secret);
  // PKCS7-ish pad to block size.
  const size_t pad = 16 - plain.size() % 16;
  plain.insert(plain.end(), pad, static_cast<uint8_t>(pad));

  Bytes iv(16);
  iv_rng.generate(iv.data(), iv.size());
  Aes aes(enc_key_);
  const Bytes ct = aes_cbc_encrypt(aes, iv, plain);

  Bytes ticket = iv;
  append(ticket, ct);
  const Bytes tag = hmac(HashAlg::kSha256, mac_key_, ticket);
  append(ticket, tag);
  return ticket;
}

Result<SessionState> TicketKeeper::unseal(BytesView ticket,
                                          uint64_t now_ms) const {
  constexpr size_t kTagLen = 32;
  constexpr size_t kIvLen = 16;
  if (ticket.size() < kIvLen + 16 + kTagLen)
    return err(Code::kCryptoError, "ticket too short");
  // The ciphertext must be whole AES blocks; check before decrypting.
  if ((ticket.size() - kIvLen - kTagLen) % 16 != 0)
    return err(Code::kCryptoError, "ticket ciphertext not block-aligned");
  BytesView body = ticket.subspan(0, ticket.size() - kTagLen);
  BytesView tag = ticket.subspan(ticket.size() - kTagLen);
  if (!ct_equal(tag, hmac(HashAlg::kSha256, mac_key_, body)))
    return err(Code::kCryptoError, "ticket MAC mismatch");

  Aes aes(enc_key_);
  QTLS_ASSIGN_OR_RETURN(
      Bytes plain,
      aes_cbc_decrypt(aes, body.subspan(0, kIvLen), body.subspan(kIvLen)));
  if (plain.empty()) return err(Code::kCryptoError, "bad ticket padding");
  const uint8_t pad = plain.back();
  if (pad == 0 || pad > 16 || plain.size() < pad)
    return err(Code::kCryptoError, "bad ticket padding");
  // Verify every pad byte (not just the last) in constant time.
  uint8_t diff = 0;
  for (size_t i = plain.size() - pad; i < plain.size(); ++i)
    diff = static_cast<uint8_t>(diff | (plain[i] ^ pad));
  if (diff != 0) return err(Code::kCryptoError, "bad ticket padding");
  plain.resize(plain.size() - pad);

  ByteReader r(plain);
  SessionState state;
  state.suite = static_cast<CipherSuite>(r.u16());
  state.created_at_ms = r.u64();
  state.master_secret = r.bytes(r.u16());
  if (!r.ok()) return err(Code::kCryptoError, "bad ticket body");
  // Age clamps to 0 when the ticket is dated ahead of our clock (skew
  // between workers, virtual-time restart) — underflow must not expire it.
  if (now_ms >= state.created_at_ms &&
      now_ms - state.created_at_ms > lifetime_ms_)
    return err(Code::kFailedPrecondition, "ticket expired");
  return state;
}

}  // namespace qtls::tls
