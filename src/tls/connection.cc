#include "tls/connection.h"

#include "common/log.h"

namespace qtls::tls {

namespace {
constexpr uint8_t kAlertLevelWarning = 1;
constexpr uint8_t kAlertCloseNotify = 0;

int to_int(TlsResult r) { return static_cast<int>(r); }
TlsResult from_int(int v) { return static_cast<TlsResult>(v); }
}  // namespace

TlsConnection::TlsConnection(TlsContext* ctx, Transport* transport,
                             common::SlabPool<HandshakeScratch>* scratch_pool)
    : ctx_(ctx),
      creds_(ctx->credentials_snapshot()),
      records_(transport, ctx->provider(), &ctx->rng(),
               ctx->config().legacy_record_dataplane),
      hs_state_(ctx->is_server() ? HsState::kExpectClientHello
                                 : HsState::kStart),
      scratch_pool_(scratch_pool),
      hs_(scratch_pool != nullptr ? scratch_pool->create()
                                  : new HandshakeScratch()) {
  // The retain knob is the whole-footprint baseline: it keeps the RX read
  // chunk pinned on idle connections too, matching pre-shrink behavior.
  records_.set_idle_shrink(!ctx->config().retain_handshake_state);
}

TlsConnection::~TlsConnection() {
  // A paused job holds a fiber stack; abandoning it mid-crypto is only
  // possible if the connection is destroyed with an offload in flight. The
  // job object is leaked deliberately in that rare path rather than resumed
  // into a dead connection. Server code drains connections before teardown.
  if (job_ != nullptr) {
    QTLS_WARN << "TlsConnection destroyed with a paused async job";
  }
  if (hs_ != nullptr) {
    // Torn down mid-handshake (or retain mode): wipe + free here instead.
    hs_->wipe_secrets();
    if (scratch_pool_ != nullptr) {
      scratch_pool_->destroy(hs_);
    } else {
      delete hs_;
    }
    hs_ = nullptr;
  }
}

// ---------------------------------------------------- handshake scratch ----

void HandshakeScratch::wipe_secrets() {
  wipe_key_schedule(premaster);
  wipe_key_schedule(master_secret);
  wipe_key_schedule(session_keys);
  wipe_key_schedule(secrets13);
  wipe_key_schedule(client_hs_keys13);
  wipe_key_schedule(server_hs_keys13);
  wipe_key_schedule(client_app_keys13);
  wipe_key_schedule(server_app_keys13);
  secure_wipe(ecdhe_share.priv.data(), ecdhe_share.priv.size());
  if (offered_session.has_value())
    wipe_key_schedule(offered_session->master_secret);
}

size_t HandshakeScratch::heap_footprint() const {
  size_t n = client_random.capacity() + server_random.capacity() +
             session_id.capacity() + premaster.capacity() +
             master_secret.capacity() + peer_point.capacity() +
             server_kx_point.capacity() + transcript.capacity() +
             pending_ticket.capacity() + hs_buffer.capacity();
  n += session_keys.client_write.enc_key.capacity() +
       session_keys.client_write.mac_key.capacity() +
       session_keys.server_write.enc_key.capacity() +
       session_keys.server_write.mac_key.capacity();
  n += secrets13.handshake_secret.capacity() +
       secrets13.client_hs_traffic.capacity() +
       secrets13.server_hs_traffic.capacity() +
       secrets13.master_secret.capacity() +
       secrets13.client_app_traffic.capacity() +
       secrets13.server_app_traffic.capacity();
  for (const AeadKeys* k : {&client_hs_keys13, &server_hs_keys13,
                            &client_app_keys13, &server_app_keys13})
    n += k->key.capacity() + k->iv.capacity();
  n += ecdhe_share.priv.capacity() + ecdhe_share.pub_point.capacity();
  if (offered_session.has_value())
    n += offered_session->session_id.capacity() +
         offered_session->ticket.capacity() +
         offered_session->master_secret.capacity();
  return n;
}

void TlsConnection::maybe_release_handshake_state() {
  if (hs_ == nullptr || ctx_->config().retain_handshake_state) return;
  hs_->wipe_secrets();
  if (scratch_pool_ != nullptr) {
    scratch_pool_->destroy(hs_);
  } else {
    delete hs_;
  }
  hs_ = nullptr;
  // The record layer's RX buffer carries the handshake flight's high-water
  // capacity; give it back too (S2: the 64 KiB reassembly retention bug).
  records_.shrink_after_handshake();
}

size_t TlsConnection::heap_footprint() const {
  size_t n = records_.heap_footprint();
  if (hs_ != nullptr) n += sizeof(HandshakeScratch) + hs_->heap_footprint();
  n += resumption_master13_.capacity() + write_data_.capacity();
  if (established_session_.has_value())
    n += established_session_->session_id.capacity() +
         established_session_->ticket.capacity() +
         established_session_->master_secret.capacity();
  return n;
}

// --------------------------------------------------------------- entry ----

TlsResult TlsConnection::run_entry(int (*fn)(TlsConnection*)) {
  if (!ctx_->config().async_mode) return from_int(fn(this));
  int ret = to_int(TlsResult::kError);
  const asyncx::JobStatus status =
      asyncx::start_job(&job_, &wait_ctx_, &ret, [fn, this] { return fn(this); });
  switch (status) {
    case asyncx::JobStatus::kPaused:
      return TlsResult::kWantAsync;
    case asyncx::JobStatus::kError:
      return TlsResult::kError;
    case asyncx::JobStatus::kFinished:
      return from_int(ret);
  }
  return TlsResult::kError;
}

TlsResult TlsConnection::handshake() { return run_entry(&handshake_entry); }

void TlsConnection::drain_paused_job(const std::function<void()>& poll) {
  // Bounded: every iteration polls, and a response eventually completes the
  // fiber's wait loop; the guard only protects against a wedged engine.
  for (int guard = 0; job_ != nullptr && guard < 1000000; ++guard) {
    if (poll) poll();
    int ret = 0;
    (void)asyncx::start_job(&job_, &wait_ctx_, &ret, nullptr);
  }
  if (job_ != nullptr) {
    QTLS_ERROR << "drain_paused_job failed to complete the async job";
  }
}

int TlsConnection::handshake_entry(TlsConnection* self) {
  for (;;) {
    switch (self->hs_state_) {
      case HsState::kDone:
        return to_int(TlsResult::kOk);
      case HsState::kFailed:
        return to_int(TlsResult::kError);
      case HsState::kClosed:
        return to_int(TlsResult::kClosed);
      default:
        break;
    }
    const TlsResult r = self->handshake_step();
    if (r != TlsResult::kOk) {
      if (r == TlsResult::kError) {
        // Tell the peer why before failing (RFC 5246 §7.2.2). We are still
        // inside the entry fiber, so an encrypted alert may legitimately
        // pause on the seal and surface as kWantAsync to the caller.
        auto alert = self->pending_alert_ ? self->pending_alert_
                                          : self->records_.last_error_alert();
        self->pending_alert_.reset();
        if (alert) self->queue_alert_inline(AlertLevel::kFatal, *alert);
        self->hs_state_ = HsState::kFailed;
      }
      return to_int(r);
    }
  }
}

TlsResult TlsConnection::handshake_step() {
  // Finish any pending flush first (a prior step may have hit kWantWrite).
  if (!records_.send_buffer_empty()) {
    const TlsResult r = records_.flush();
    if (r != TlsResult::kOk) return r;
  }
  return ctx_->is_server() ? server_step() : client_step();
}

// ------------------------------------------------------------ plumbing ----

TlsResult TlsConnection::next_record(Record* out) {
  RecordLayer::ReadOutcome outcome = records_.read_record();
  if (!outcome.record.has_value()) return outcome.result;
  *out = std::move(*outcome.record);
  return TlsResult::kOk;
}

TlsResult TlsConnection::next_handshake_message(HandshakeHeader* out) {
  for (;;) {
    if (hs_->hs_buffer.size() >= 4) {
      // Reassembly cap: the claimed message length bounds hs_->hs_buffer growth
      // (buffer never exceeds cap + one record). A hostile claim is a
      // fatal decode_error before any of it is buffered.
      const uint32_t claimed = static_cast<uint32_t>(hs_->hs_buffer[1]) << 16 |
                               static_cast<uint32_t>(hs_->hs_buffer[2]) << 8 |
                               hs_->hs_buffer[3];
      if (claimed > kMaxHandshakeMessage) {
        pending_alert_ = AlertDescription::kDecodeError;
        return TlsResult::kError;
      }
      size_t consumed = 0;
      auto parsed = parse_handshake(hs_->hs_buffer, &consumed);
      if (parsed.is_ok()) {
        transcript_add(BytesView(hs_->hs_buffer.data(), consumed));
        *out = std::move(parsed).take();
        hs_->hs_buffer.erase(hs_->hs_buffer.begin(),
                         hs_->hs_buffer.begin() + static_cast<ptrdiff_t>(consumed));
        return TlsResult::kOk;
      }
      // kProtocolError from truncation means "need more bytes" — fall
      // through to read another record; other errors are fatal only when a
      // full length is present, which parse_handshake already checked.
    }
    Record record;
    const TlsResult r = next_record(&record);
    if (r != TlsResult::kOk) return r;
    if (record.type == ContentType::kAlert) return TlsResult::kClosed;
    if (record.type != ContentType::kHandshake) {
      QTLS_WARN << "unexpected record type "
                << static_cast<int>(record.type) << " during handshake";
      pending_alert_ = AlertDescription::kUnexpectedMessage;
      return TlsResult::kError;
    }
    append(hs_->hs_buffer, record.payload);
  }
}

Status TlsConnection::send_handshake(HandshakeType type, BytesView body) {
  const Bytes framed = frame_handshake(type, body);
  transcript_add(framed);
  return records_.queue(ContentType::kHandshake, framed);
}

void TlsConnection::transcript_add(BytesView framed) {
  append(hs_->transcript, framed);
}

Bytes TlsConnection::transcript_hash() const {
  return hash(cipher_suite_info(suite_).prf_hash, hs_->transcript);
}

// ---------------------------------------------------------- key install ----

Status TlsConnection::derive_and_install_keys() {
  const CipherSuiteInfo& info = cipher_suite_info(suite_);
  QTLS_ASSIGN_OR_RETURN(
      SessionKeys keys,
      tls12_key_expansion(ctx_->provider(), info, hs_->master_secret,
                          hs_->client_random, hs_->server_random));
  ++ops_.prf;
  hs_->session_keys = std::move(keys);
  hs_->keys_derived = true;
  return Status::ok();
}

void TlsConnection::install_tx_keys() {
  records_.enable_encryption_tx(ctx_->is_server() ? hs_->session_keys.server_write
                                                  : hs_->session_keys.client_write);
}

void TlsConnection::install_rx_keys() {
  records_.enable_encryption_rx(ctx_->is_server() ? hs_->session_keys.client_write
                                                  : hs_->session_keys.server_write);
}

Result<Bytes> TlsConnection::finished_verify(const std::string& label) {
  const CipherSuiteInfo& info = cipher_suite_info(suite_);
  auto out = tls12_finished_verify(ctx_->provider(), info.prf_hash,
                                   hs_->master_secret, label, transcript_hash());
  if (out.is_ok()) ++ops_.prf;
  return out;
}

void TlsConnection::record_established_session() {
  ClientSession session;
  session.suite = suite_;
  session.master_secret = hs_->master_secret;
  session.session_id = hs_->session_id;
  session.ticket = hs_->pending_ticket;
  established_session_ = std::move(session);
}

// ------------------------------------------------------------- server ----

TlsResult TlsConnection::server_step() {
  switch (hs_state_) {
    case HsState::kExpectClientHello: {
      HandshakeHeader msg;
      const TlsResult r = next_handshake_message(&msg);
      if (r != TlsResult::kOk) return r;
      if (msg.type != HandshakeType::kClientHello) return TlsResult::kError;
      return server_on_client_hello(msg);
    }
    case HsState::kExpectClientKeyExchange: {
      HandshakeHeader msg;
      const TlsResult r = next_handshake_message(&msg);
      if (r != TlsResult::kOk) return r;
      if (msg.type != HandshakeType::kClientKeyExchange)
        return TlsResult::kError;
      return server_on_client_key_exchange(msg);
    }
    case HsState::kExpectClientCcs:
    case HsState::kExpectClientCcsResumed: {
      Record record;
      const TlsResult r = next_record(&record);
      if (r != TlsResult::kOk) return r;
      if (record.type != ContentType::kChangeCipherSpec)
        return TlsResult::kError;
      install_rx_keys();
      hs_state_ = hs_state_ == HsState::kExpectClientCcs
                      ? HsState::kExpectClientFinished
                      : HsState::kExpectClientFinishedResumed;
      return TlsResult::kOk;
    }
    case HsState::kExpectClientFinished:
    case HsState::kExpectClientFinishedResumed: {
      HandshakeHeader msg;
      const TlsResult r = next_handshake_message(&msg);
      if (r != TlsResult::kOk) return r;
      if (msg.type != HandshakeType::kFinished) return TlsResult::kError;
      return server_on_client_finished(
          msg, hs_state_ == HsState::kExpectClientFinishedResumed);
    }
    case HsState::kExpectClientFinished13: {
      HandshakeHeader msg;
      const TlsResult r = next_handshake_message(&msg);
      if (r != TlsResult::kOk) return r;
      if (msg.type != HandshakeType::kFinished) return TlsResult::kError;
      // Expected verify over the transcript up to (not including) this
      // Finished; next_handshake_message already added the client Finished
      // frame, so compute against the remembered pre-Finished transcript.
      // We kept it implicit: recompute by stripping the frame we just added.
      Bytes pre_finished(hs_->transcript.begin(),
                         hs_->transcript.end() -
                             static_cast<ptrdiff_t>(4 + msg.body.size()));
      const HashAlg alg = cipher_suite_info(suite_).prf_hash;
      const Bytes expect = tls13_finished_verify(
          alg, hs_->secrets13.client_hs_traffic, hash(alg, pre_finished),
          &ops_.hkdf);
      if (!ct_equal(expect, msg.body)) return TlsResult::kError;
      // Switch both directions to application traffic keys.
      records_.enable_encryption_tx(hs_->server_app_keys13);
      records_.enable_encryption_rx(hs_->client_app_keys13);
      // Post-handshake NewSessionTicket (RFC 8446 §4.6.1), sealing the
      // resumption master secret for a later psk_dhe_ke handshake. The
      // kDone transition comes after the ticket is sealed and queued: its
      // record encryption may itself be an async offload, and the
      // handshake must not report complete with that job still paused.
      if (ctx_->config().use_session_tickets) {
        resumption_master13_ = tls13_resumption_master(
            alg, hs_->secrets13.master_secret, hash(alg, hs_->transcript),
            &ops_.hkdf);
        SessionState state;
        state.suite = suite_;
        state.master_secret = resumption_master13_;
        NewSessionTicketMsg nst;
        nst.ticket = ctx_->tickets().seal(state, ctx_->now_ms(), ctx_->rng());
        if (!send_handshake(HandshakeType::kNewSessionTicket, nst.encode())
                 .is_ok())
          return TlsResult::kError;
        const TlsResult fr = records_.flush();
        if (fr != TlsResult::kOk && fr != TlsResult::kWantWrite)
          return fr;
      }
      hs_state_ = HsState::kDone;
      maybe_release_handshake_state();
      return TlsResult::kOk;
    }
    default:
      return TlsResult::kError;
  }
}

TlsResult TlsConnection::server_on_client_hello(const HandshakeHeader& msg) {
  auto parsed = ClientHello::parse(msg.body);
  if (!parsed.is_ok()) return TlsResult::kError;
  const ClientHello& hello = parsed.value();

  const auto selected = ctx_->select_suite(hello.cipher_suites);
  if (!selected.has_value()) return TlsResult::kError;
  suite_ = *selected;
  hs_->client_random = hello.random;
  hs_->server_random.resize(kRandomSize);
  ctx_->rng().generate(hs_->server_random.data(), hs_->server_random.size());

  if (cipher_suite_info(suite_).tls13 &&
      hello.version == ProtocolVersion::kTls13 && !hello.key_share.empty()) {
    version_ = ProtocolVersion::kTls13;
    // psk_dhe_ke resumption: a valid ticket supplies the PSK; the handshake
    // still runs ECDHE (forward secrecy) but skips certificate/signature.
    if (!hello.session_ticket.empty()) {
      auto unsealed =
          ctx_->tickets().unseal(hello.session_ticket, ctx_->now_ms());
      if (unsealed.is_ok() && unsealed.value().state.suite == suite_)
        return server_step13(hello, unsealed.value().state.master_secret);
    }
    return server_step13(hello, {});
  }
  version_ = ProtocolVersion::kTls12;

  // Resumption: ticket first (self-contained), then the session-ID cache.
  const uint64_t now = ctx_->now_ms();
  if (!hello.session_ticket.empty()) {
    auto unsealed = ctx_->tickets().unseal(hello.session_ticket, now);
    if (unsealed.is_ok() && unsealed.value().state.suite == suite_)
      return server_resume_flight(hello, unsealed.value().state);
  }
  if (hello.session_id.size() == kSessionIdSize) {
    auto state = ctx_->session_cache().get(hello.session_id, now);
    if (state.has_value() && state->suite == suite_) {
      hs_->session_id = hello.session_id;
      return server_resume_flight(hello, *state);
    }
  }
  return server_full_handshake_flight(hello);
}

TlsResult TlsConnection::server_full_handshake_flight(
    const ClientHello& hello) {
  const CipherSuiteInfo& info = cipher_suite_info(suite_);
  resumed_ = false;

  hs_->session_id.resize(kSessionIdSize);
  ctx_->rng().generate(hs_->session_id.data(), hs_->session_id.size());

  ServerHello sh;
  sh.version = ProtocolVersion::kTls12;
  sh.random = hs_->server_random;
  sh.session_id = hs_->session_id;
  sh.cipher_suite = suite_;
  sh.resumed = false;
  if (send_handshake(HandshakeType::kServerHello, sh.encode()).is_ok() ==
      false)
    return TlsResult::kError;

  // Certificate: raw public key of the signing credential.
  CertificateMsg cert;
  if (info.kx == KeyExchange::kEcdheEcdsa) {
    const bool p384 = ctx_->config().curve == CurveId::kP384;
    const EcKeyPair* key = p384 ? creds_->ecdsa_p384
                                : creds_->ecdsa_p256;
    if (!key) return TlsResult::kError;
    cert.cred_type =
        p384 ? CredentialType::kEcdsaP384 : CredentialType::kEcdsaP256;
    cert.public_key =
        (p384 ? curve_p384() : curve_p256()).encode_point(key->pub);
  } else {
    if (!creds_->rsa_key) return TlsResult::kError;
    cert.cred_type = CredentialType::kRsa;
    cert.public_key =
        CertificateMsg::encode_rsa_key(creds_->rsa_key->pub);
  }
  if (!send_handshake(HandshakeType::kCertificate, cert.encode()).is_ok())
    return TlsResult::kError;

  if (info.kx != KeyExchange::kRsa) {
    // ServerKeyExchange: ephemeral share + signature. Two provider calls
    // that offload: the EC keygen here and (later) the ECDH derive.
    auto share = ctx_->provider()->ecdhe_keygen(hello.curve);
    if (!share.is_ok()) return TlsResult::kError;
    ++ops_.ecc;
    hs_->ecdhe_share = std::move(share).take();

    ServerKeyExchange ske;
    ske.curve = hello.curve;
    ske.point = hs_->ecdhe_share.pub_point;
    const Bytes digest =
        ServerKeyExchange::signed_digest(info.prf_hash, hs_->client_random,
                                         hs_->server_random, ske.curve, ske.point);
    if (info.kx == KeyExchange::kEcdheRsa) {
      auto sig = ctx_->provider()->rsa_sign(*creds_->rsa_key,
                                            digest);
      if (!sig.is_ok()) return TlsResult::kError;
      ++ops_.rsa;
      ske.signature = std::move(sig).take();
    } else {
      const bool p384 = ctx_->config().curve == CurveId::kP384;
      const CurveId sign_curve = p384 ? CurveId::kP384 : CurveId::kP256;
      const EcKeyPair* key = p384 ? creds_->ecdsa_p384
                                  : creds_->ecdsa_p256;
      auto sig = ctx_->provider()->ecdsa_sign(sign_curve, key->priv, digest);
      if (!sig.is_ok()) return TlsResult::kError;
      ++ops_.ecc;
      ske.signature = std::move(sig).take();
    }
    if (!send_handshake(HandshakeType::kServerKeyExchange, ske.encode())
             .is_ok())
      return TlsResult::kError;
  }

  if (!send_handshake(HandshakeType::kServerHelloDone, {}).is_ok())
    return TlsResult::kError;

  hs_state_ = HsState::kExpectClientKeyExchange;
  const TlsResult r = records_.flush();
  return r == TlsResult::kOk || r == TlsResult::kWantWrite ? TlsResult::kOk
                                                           : r;
}

TlsResult TlsConnection::server_resume_flight(const ClientHello& hello,
                                              const SessionState& session) {
  resumed_ = true;
  hs_->master_secret = session.master_secret;

  ServerHello sh;
  sh.version = ProtocolVersion::kTls12;
  sh.random = hs_->server_random;
  sh.session_id = hello.session_id;
  sh.cipher_suite = suite_;
  sh.resumed = true;
  if (!send_handshake(HandshakeType::kServerHello, sh.encode()).is_ok())
    return TlsResult::kError;

  if (ctx_->config().use_session_tickets) {
    // Re-seal under the current ticket-key epoch, but carry the ORIGINAL
    // creation time forward: the total master-secret lifetime is capped
    // from first establishment, not from the latest resumption.
    SessionState fresh;
    fresh.suite = suite_;
    fresh.master_secret = hs_->master_secret;
    fresh.created_at_ms = session.created_at_ms;
    NewSessionTicketMsg nst;
    nst.ticket = ctx_->tickets().seal(fresh, ctx_->now_ms(), ctx_->rng());
    if (!send_handshake(HandshakeType::kNewSessionTicket, nst.encode())
             .is_ok())
      return TlsResult::kError;
  }

  // Abbreviated handshake: key expansion + server Finished, PRF only
  // (paper §5.3).
  if (!derive_and_install_keys().is_ok()) return TlsResult::kError;

  if (!records_.queue(ContentType::kChangeCipherSpec, Bytes{0x01}).is_ok())
    return TlsResult::kError;
  install_tx_keys();
  auto verify = finished_verify("server finished");
  if (!verify.is_ok()) return TlsResult::kError;
  if (!send_handshake(HandshakeType::kFinished, verify.value()).is_ok())
    return TlsResult::kError;

  hs_state_ = HsState::kExpectClientCcsResumed;
  const TlsResult r = records_.flush();
  return r == TlsResult::kOk || r == TlsResult::kWantWrite ? TlsResult::kOk
                                                           : r;
}

TlsResult TlsConnection::server_on_client_key_exchange(
    const HandshakeHeader& msg) {
  auto parsed = ClientKeyExchange::parse(msg.body);
  if (!parsed.is_ok()) return TlsResult::kError;
  const CipherSuiteInfo& info = cipher_suite_info(suite_);

  if (info.kx == KeyExchange::kRsa) {
    auto premaster = ctx_->provider()->rsa_decrypt(
        *creds_->rsa_key, parsed.value().exchange_data);
    if (!premaster.is_ok()) return TlsResult::kError;
    ++ops_.rsa;
    hs_->premaster = std::move(premaster).take();
    if (hs_->premaster.size() != kMasterSecretSize) return TlsResult::kError;
  } else {
    auto secret = ctx_->provider()->ecdhe_derive(
        hs_->ecdhe_share, parsed.value().exchange_data);
    if (!secret.is_ok()) return TlsResult::kError;
    ++ops_.ecc;
    hs_->premaster = std::move(secret).take();
  }

  auto master = tls12_master_secret(ctx_->provider(),
                                    cipher_suite_info(suite_).prf_hash,
                                    hs_->premaster, hs_->client_random,
                                    hs_->server_random);
  if (!master.is_ok()) return TlsResult::kError;
  ++ops_.prf;
  hs_->master_secret = std::move(master).take();
  secure_wipe(hs_->premaster.data(), hs_->premaster.size());
  if (!derive_and_install_keys().is_ok()) return TlsResult::kError;

  hs_state_ = HsState::kExpectClientCcs;
  return TlsResult::kOk;
}

TlsResult TlsConnection::server_on_client_finished(const HandshakeHeader& msg,
                                                   bool resumed) {
  // Expected verify over the transcript excluding this Finished message.
  Bytes with_finished = std::move(hs_->transcript);
  hs_->transcript.assign(with_finished.begin(),
                     with_finished.end() -
                         static_cast<ptrdiff_t>(4 + msg.body.size()));
  auto expect = finished_verify("client finished");
  hs_->transcript = std::move(with_finished);
  if (!expect.is_ok()) return TlsResult::kError;
  if (!ct_equal(expect.value(), msg.body)) return TlsResult::kError;

  if (!resumed) {
    // Cache / ticket issuance, then CCS + server Finished.
    const uint64_t now = ctx_->now_ms();
    SessionState state;
    state.suite = suite_;
    state.master_secret = hs_->master_secret;
    if (ctx_->config().use_session_tickets) {
      NewSessionTicketMsg nst;
      nst.ticket = ctx_->tickets().seal(state, now, ctx_->rng());
      if (!send_handshake(HandshakeType::kNewSessionTicket, nst.encode())
               .is_ok())
        return TlsResult::kError;
    } else {
      ctx_->session_cache().put(hs_->session_id, state, now);
    }

    if (!records_.queue(ContentType::kChangeCipherSpec, Bytes{0x01}).is_ok())
      return TlsResult::kError;
    install_tx_keys();
    auto verify = finished_verify("server finished");
    if (!verify.is_ok()) return TlsResult::kError;
    if (!send_handshake(HandshakeType::kFinished, verify.value()).is_ok())
      return TlsResult::kError;
    const TlsResult r = records_.flush();
    if (r != TlsResult::kOk && r != TlsResult::kWantWrite) return r;
  }

  record_established_session();
  hs_state_ = HsState::kDone;
  maybe_release_handshake_state();
  return TlsResult::kOk;
}

// ----------------------------------------------------------- TLS 1.3 ----

TlsResult TlsConnection::server_step13(const ClientHello& hello,
                                       BytesView psk) {
  const CipherSuiteInfo& info = cipher_suite_info(suite_);
  resumed_ = !psk.empty();

  // ECDHE: our share + shared secret (two EC ops, both offloadable).
  auto share = ctx_->provider()->ecdhe_keygen(hello.curve);
  if (!share.is_ok()) return TlsResult::kError;
  ++ops_.ecc;
  hs_->ecdhe_share = std::move(share).take();
  auto shared = ctx_->provider()->ecdhe_derive(hs_->ecdhe_share, hello.key_share);
  if (!shared.is_ok()) return TlsResult::kError;
  ++ops_.ecc;
  const Bytes ecdhe_secret = std::move(shared).take();

  ServerHello sh;
  sh.version = ProtocolVersion::kTls13;
  sh.random = hs_->server_random;
  sh.cipher_suite = suite_;
  sh.resumed = resumed_;
  sh.key_share = hs_->ecdhe_share.pub_point;
  if (!send_handshake(HandshakeType::kServerHello, sh.encode()).is_ok())
    return TlsResult::kError;

  // Handshake secrets from the CH..SH transcript; HKDF runs on the CPU —
  // not offloadable through the QAT Engine (paper §5.2 / Fig. 8).
  const HashAlg alg = info.prf_hash;
  hs_->secrets13 = tls13_handshake_secrets(alg, ecdhe_secret,
                                       hash(alg, hs_->transcript), psk);
  hs_->client_hs_keys13 = tls13_aead_keys(alg, hs_->secrets13.client_hs_traffic,
                                      info, &hs_->secrets13.hkdf_ops);
  hs_->server_hs_keys13 = tls13_aead_keys(alg, hs_->secrets13.server_hs_traffic,
                                      info, &hs_->secrets13.hkdf_ops);
  records_.enable_encryption_tx(hs_->server_hs_keys13);

  if (!send_handshake(HandshakeType::kEncryptedExtensions, {}).is_ok())
    return TlsResult::kError;

  if (!resumed_) {
    // Full handshake: certificate + CertificateVerify (the 1 RSA op of
    // Table 1's TLS 1.3 row). PSK resumption skips both — "asymmetric-key
    // calculations can be skipped" (§2.1).
    CertificateMsg cert;
    cert.cred_type = CredentialType::kRsa;
    if (!creds_->rsa_key) return TlsResult::kError;
    cert.public_key =
        CertificateMsg::encode_rsa_key(creds_->rsa_key->pub);
    if (!send_handshake(HandshakeType::kCertificate, cert.encode()).is_ok())
      return TlsResult::kError;

    CertificateVerifyMsg cv;
    auto sig = ctx_->provider()->rsa_sign(*creds_->rsa_key,
                                          hash(alg, hs_->transcript));
    if (!sig.is_ok()) return TlsResult::kError;
    ++ops_.rsa;
    cv.signature = std::move(sig).take();
    if (!send_handshake(HandshakeType::kCertificateVerify, cv.encode())
             .is_ok())
      return TlsResult::kError;
  }

  const Bytes verify = tls13_finished_verify(alg, hs_->secrets13.server_hs_traffic,
                                             hash(alg, hs_->transcript),
                                             &hs_->secrets13.hkdf_ops);
  if (!send_handshake(HandshakeType::kFinished, verify).is_ok())
    return TlsResult::kError;

  // Application secrets over the transcript through server Finished.
  tls13_application_secrets(alg, &hs_->secrets13, hash(alg, hs_->transcript));
  hs_->client_app_keys13 = tls13_aead_keys(alg, hs_->secrets13.client_app_traffic,
                                       info, &hs_->secrets13.hkdf_ops);
  hs_->server_app_keys13 = tls13_aead_keys(alg, hs_->secrets13.server_app_traffic,
                                       info, &hs_->secrets13.hkdf_ops);
  ops_.hkdf = hs_->secrets13.hkdf_ops;
  records_.enable_encryption_rx(hs_->client_hs_keys13);

  hs_state_ = HsState::kExpectClientFinished13;
  const TlsResult r = records_.flush();
  return r == TlsResult::kOk || r == TlsResult::kWantWrite ? TlsResult::kOk
                                                           : r;
}

// ------------------------------------------------------------- client ----

TlsResult TlsConnection::client_step() {
  switch (hs_state_) {
    case HsState::kStart:
      return client_send_hello();
    case HsState::kExpectServerHello: {
      HandshakeHeader msg;
      const TlsResult r = next_handshake_message(&msg);
      if (r != TlsResult::kOk) return r;
      if (msg.type != HandshakeType::kServerHello) return TlsResult::kError;
      return client_on_server_hello(msg);
    }
    case HsState::kExpectServerHandshake: {
      HandshakeHeader msg;
      const TlsResult r = next_handshake_message(&msg);
      if (r != TlsResult::kOk) return r;
      return client_on_server_flight(msg);
    }
    case HsState::kExpectServerCcs:
    case HsState::kExpectServerCcsResumed: {
      Record record;
      const TlsResult r = next_record(&record);
      if (r != TlsResult::kOk) return r;
      if (record.type == ContentType::kHandshake) {
        // NewSessionTicket may precede CCS in both resumed and full flows.
        append(hs_->hs_buffer, record.payload);
        size_t consumed = 0;
        auto parsed = parse_handshake(hs_->hs_buffer, &consumed);
        if (!parsed.is_ok()) return TlsResult::kError;
        transcript_add(BytesView(hs_->hs_buffer.data(), consumed));
        hs_->hs_buffer.erase(hs_->hs_buffer.begin(),
                         hs_->hs_buffer.begin() + static_cast<ptrdiff_t>(consumed));
        if (parsed.value().type != HandshakeType::kNewSessionTicket)
          return TlsResult::kError;
        auto nst = NewSessionTicketMsg::parse(parsed.value().body);
        if (!nst.is_ok()) return TlsResult::kError;
        hs_->pending_ticket = nst.value().ticket;
        return TlsResult::kOk;  // stay in the same state, CCS still expected
      }
      if (record.type != ContentType::kChangeCipherSpec)
        return TlsResult::kError;
      if (hs_state_ == HsState::kExpectServerCcsResumed) {
        // Abbreviated: derive keys now (master secret came from the offer).
        if (!derive_and_install_keys().is_ok()) return TlsResult::kError;
      }
      install_rx_keys();
      hs_state_ = hs_state_ == HsState::kExpectServerCcs
                      ? HsState::kExpectServerFinished
                      : HsState::kExpectServerFinishedResumed;
      return TlsResult::kOk;
    }
    case HsState::kExpectServerFinished:
    case HsState::kExpectServerFinishedResumed: {
      HandshakeHeader msg;
      const TlsResult r = next_handshake_message(&msg);
      if (r != TlsResult::kOk) return r;
      if (msg.type != HandshakeType::kFinished) return TlsResult::kError;
      return client_on_server_finished(
          msg, hs_state_ == HsState::kExpectServerFinishedResumed);
    }
    case HsState::kExpectServerFlight13:
      return client_process_server_flight13();
    default:
      return TlsResult::kError;
  }
}

TlsResult TlsConnection::client_send_hello() {
  ClientHello hello;
  const CipherSuiteInfo& first =
      cipher_suite_info(ctx_->config().cipher_suites.front());
  hello.version =
      first.tls13 ? ProtocolVersion::kTls13 : ProtocolVersion::kTls12;
  hs_->client_random.resize(kRandomSize);
  ctx_->rng().generate(hs_->client_random.data(), hs_->client_random.size());
  hello.random = hs_->client_random;
  hello.cipher_suites = ctx_->config().cipher_suites;
  hello.curve = ctx_->config().curve;

  if (hs_->offered_session.has_value()) {
    if (first.tls13) {
      // psk_dhe_ke offer: ticket only (no legacy session id).
      hello.session_ticket = hs_->offered_session->ticket;
    } else {
      hello.session_id = hs_->offered_session->session_id;
      hello.session_ticket = hs_->offered_session->ticket;
    }
  }

  if (first.tls13) {
    auto share = ctx_->provider()->ecdhe_keygen(hello.curve);
    if (!share.is_ok()) return TlsResult::kError;
    ++ops_.ecc;
    hs_->ecdhe_share = std::move(share).take();
    hello.key_share = hs_->ecdhe_share.pub_point;
  }

  if (!send_handshake(HandshakeType::kClientHello, hello.encode()).is_ok())
    return TlsResult::kError;
  hs_state_ = HsState::kExpectServerHello;
  const TlsResult r = records_.flush();
  return r == TlsResult::kOk || r == TlsResult::kWantWrite ? TlsResult::kOk
                                                           : r;
}

TlsResult TlsConnection::client_on_server_hello(const HandshakeHeader& msg) {
  auto parsed = ServerHello::parse(msg.body);
  if (!parsed.is_ok()) return TlsResult::kError;
  const ServerHello& sh = parsed.value();
  suite_ = sh.cipher_suite;
  version_ = sh.version;
  hs_->server_random = sh.random;
  hs_->session_id = sh.session_id;

  if (sh.version == ProtocolVersion::kTls13) {
    if (sh.key_share.empty()) return TlsResult::kError;
    hs_->peer_point = sh.key_share;
    resumed_ = sh.resumed;
    if (resumed_ && !hs_->offered_session.has_value()) return TlsResult::kError;
    // Derive the shared secret and handshake keys immediately.
    auto shared = ctx_->provider()->ecdhe_derive(hs_->ecdhe_share, hs_->peer_point);
    if (!shared.is_ok()) return TlsResult::kError;
    ++ops_.ecc;
    const CipherSuiteInfo& info = cipher_suite_info(suite_);
    const HashAlg alg = info.prf_hash;
    const Bytes psk =
        resumed_ ? hs_->offered_session->master_secret : Bytes();
    hs_->secrets13 = tls13_handshake_secrets(alg, shared.value(),
                                         hash(alg, hs_->transcript), psk);
    hs_->client_hs_keys13 = tls13_aead_keys(
        alg, hs_->secrets13.client_hs_traffic, info, &hs_->secrets13.hkdf_ops);
    hs_->server_hs_keys13 = tls13_aead_keys(
        alg, hs_->secrets13.server_hs_traffic, info, &hs_->secrets13.hkdf_ops);
    records_.enable_encryption_rx(hs_->server_hs_keys13);
    hs_state_ = HsState::kExpectServerFlight13;
    return TlsResult::kOk;
  }

  if (sh.resumed) {
    if (!hs_->offered_session.has_value()) return TlsResult::kError;
    resumed_ = true;
    hs_->master_secret = hs_->offered_session->master_secret;
    hs_state_ = HsState::kExpectServerCcsResumed;
    return TlsResult::kOk;
  }
  resumed_ = false;
  hs_state_ = HsState::kExpectServerHandshake;
  return TlsResult::kOk;
}

TlsResult TlsConnection::client_on_server_flight(const HandshakeHeader& msg) {
  const CipherSuiteInfo& info = cipher_suite_info(suite_);
  switch (msg.type) {
    case HandshakeType::kCertificate: {
      auto cert = CertificateMsg::parse(msg.body);
      if (!cert.is_ok()) return TlsResult::kError;
      if (cert.value().cred_type == CredentialType::kRsa) {
        auto key = CertificateMsg::decode_rsa_key(cert.value().public_key);
        if (!key.is_ok()) return TlsResult::kError;
        hs_->peer_rsa = std::move(key).take();
      } else {
        hs_->peer_point = cert.value().public_key;  // ECDSA pub, reused below
        hs_->peer_ecdsa_p384 =
            cert.value().cred_type == CredentialType::kEcdsaP384;
      }
      return TlsResult::kOk;
    }
    case HandshakeType::kServerKeyExchange: {
      auto ske = ServerKeyExchange::parse(msg.body);
      if (!ske.is_ok()) return TlsResult::kError;
      const Bytes digest = ServerKeyExchange::signed_digest(
          info.prf_hash, hs_->client_random, hs_->server_random, ske.value().curve,
          ske.value().point);
      if (info.kx == KeyExchange::kEcdheRsa) {
        if (!rsa_verify_pkcs1(hs_->peer_rsa, digest, ske.value().signature)
                 .is_ok())
          return TlsResult::kError;
      } else if (info.kx == KeyExchange::kEcdheEcdsa) {
        const EcCurve& sign_curve =
            hs_->peer_ecdsa_p384 ? curve_p384() : curve_p256();
        auto pub = sign_curve.decode_point(hs_->peer_point);
        if (!pub.is_ok()) return TlsResult::kError;
        auto sig = EcdsaSignature::decode(ske.value().signature, sign_curve);
        if (!sig.is_ok()) return TlsResult::kError;
        if (!ecdsa_verify(sign_curve, pub.value(), digest, sig.value())
                 .is_ok())
          return TlsResult::kError;
      }
      hs_->ske_curve = ske.value().curve;
      hs_->server_kx_point = ske.value().point;
      return TlsResult::kOk;
    }
    case HandshakeType::kServerHelloDone:
      return client_send_second_flight();
    default:
      return TlsResult::kError;
  }
}

TlsResult TlsConnection::client_send_second_flight() {
  const CipherSuiteInfo& info = cipher_suite_info(suite_);
  ClientKeyExchange cke;

  if (info.kx == KeyExchange::kRsa) {
    hs_->premaster.resize(kMasterSecretSize);
    ctx_->rng().generate(hs_->premaster.data(), hs_->premaster.size());
    auto ct = rsa_encrypt_pkcs1(hs_->peer_rsa, hs_->premaster, ctx_->rng());
    if (!ct.is_ok()) return TlsResult::kError;
    cke.exchange_data = std::move(ct).take();
  } else {
    auto share = ctx_->provider()->ecdhe_keygen(hs_->ske_curve);
    if (!share.is_ok()) return TlsResult::kError;
    ++ops_.ecc;
    hs_->ecdhe_share = std::move(share).take();
    cke.exchange_data = hs_->ecdhe_share.pub_point;
    auto secret = ctx_->provider()->ecdhe_derive(hs_->ecdhe_share,
                                                 hs_->server_kx_point);
    if (!secret.is_ok()) return TlsResult::kError;
    ++ops_.ecc;
    hs_->premaster = std::move(secret).take();
  }

  if (!send_handshake(HandshakeType::kClientKeyExchange, cke.encode())
           .is_ok())
    return TlsResult::kError;

  auto master =
      tls12_master_secret(ctx_->provider(), info.prf_hash, hs_->premaster,
                          hs_->client_random, hs_->server_random);
  if (!master.is_ok()) return TlsResult::kError;
  ++ops_.prf;
  hs_->master_secret = std::move(master).take();
  secure_wipe(hs_->premaster.data(), hs_->premaster.size());
  if (!derive_and_install_keys().is_ok()) return TlsResult::kError;

  if (!records_.queue(ContentType::kChangeCipherSpec, Bytes{0x01}).is_ok())
    return TlsResult::kError;
  install_tx_keys();
  auto verify = finished_verify("client finished");
  if (!verify.is_ok()) return TlsResult::kError;
  if (!send_handshake(HandshakeType::kFinished, verify.value()).is_ok())
    return TlsResult::kError;

  hs_state_ = HsState::kExpectServerCcs;
  const TlsResult r = records_.flush();
  return r == TlsResult::kOk || r == TlsResult::kWantWrite ? TlsResult::kOk
                                                           : r;
}

TlsResult TlsConnection::client_on_server_finished(const HandshakeHeader& msg,
                                                   bool resumed) {
  Bytes with_finished = std::move(hs_->transcript);
  hs_->transcript.assign(with_finished.begin(),
                     with_finished.end() -
                         static_cast<ptrdiff_t>(4 + msg.body.size()));
  auto expect = finished_verify("server finished");
  hs_->transcript = std::move(with_finished);
  if (!expect.is_ok()) return TlsResult::kError;
  if (!ct_equal(expect.value(), msg.body)) return TlsResult::kError;

  if (resumed) {
    // Abbreviated handshake: respond with CCS + client Finished.
    if (!records_.queue(ContentType::kChangeCipherSpec, Bytes{0x01}).is_ok())
      return TlsResult::kError;
    install_tx_keys();
    auto verify = finished_verify("client finished");
    if (!verify.is_ok()) return TlsResult::kError;
    if (!send_handshake(HandshakeType::kFinished, verify.value()).is_ok())
      return TlsResult::kError;
    const TlsResult r = records_.flush();
    if (r != TlsResult::kOk && r != TlsResult::kWantWrite) return r;
  }

  record_established_session();
  hs_state_ = HsState::kDone;
  maybe_release_handshake_state();
  return TlsResult::kOk;
}

TlsResult TlsConnection::client_process_server_flight13() {
  const CipherSuiteInfo& info = cipher_suite_info(suite_);
  const HashAlg alg = info.prf_hash;
  for (;;) {
    // Remember the transcript before each message: Finished verification
    // needs the pre-Finished hash.
    const size_t transcript_before = hs_->transcript.size();
    HandshakeHeader msg;
    const TlsResult r = next_handshake_message(&msg);
    if (r != TlsResult::kOk) return r;
    switch (msg.type) {
      case HandshakeType::kEncryptedExtensions:
        break;
      case HandshakeType::kCertificate: {
        auto cert = CertificateMsg::parse(msg.body);
        if (!cert.is_ok() ||
            cert.value().cred_type != CredentialType::kRsa)
          return TlsResult::kError;
        auto key = CertificateMsg::decode_rsa_key(cert.value().public_key);
        if (!key.is_ok()) return TlsResult::kError;
        hs_->peer_rsa = std::move(key).take();
        break;
      }
      case HandshakeType::kCertificateVerify: {
        auto cv = CertificateVerifyMsg::parse(msg.body);
        if (!cv.is_ok()) return TlsResult::kError;
        const Bytes digest =
            hash(alg, BytesView(hs_->transcript.data(), transcript_before));
        if (!rsa_verify_pkcs1(hs_->peer_rsa, digest, cv.value().signature)
                 .is_ok())
          return TlsResult::kError;
        break;
      }
      case HandshakeType::kFinished: {
        const Bytes expect = tls13_finished_verify(
            alg, hs_->secrets13.server_hs_traffic,
            hash(alg, BytesView(hs_->transcript.data(), transcript_before)),
            &hs_->secrets13.hkdf_ops);
        if (!ct_equal(expect, msg.body)) return TlsResult::kError;

        // Application secrets over the transcript through server Finished.
        tls13_application_secrets(alg, &hs_->secrets13,
                                  hash(alg, hs_->transcript));
        hs_->client_app_keys13 = tls13_aead_keys(
            alg, hs_->secrets13.client_app_traffic, info, &hs_->secrets13.hkdf_ops);
        hs_->server_app_keys13 = tls13_aead_keys(
            alg, hs_->secrets13.server_app_traffic, info, &hs_->secrets13.hkdf_ops);

        // Client Finished under the handshake traffic keys.
        records_.enable_encryption_tx(hs_->client_hs_keys13);
        const Bytes verify = tls13_finished_verify(
            alg, hs_->secrets13.client_hs_traffic, hash(alg, hs_->transcript),
            &hs_->secrets13.hkdf_ops);
        if (!send_handshake(HandshakeType::kFinished, verify).is_ok())
          return TlsResult::kError;
        const TlsResult fr = records_.flush();
        if (fr != TlsResult::kOk && fr != TlsResult::kWantWrite) return fr;

        records_.enable_encryption_tx(hs_->client_app_keys13);
        records_.enable_encryption_rx(hs_->server_app_keys13);
        // Resumption master over the full transcript (incl. our Finished) —
        // paired with the server's NewSessionTicket, which read() captures.
        resumption_master13_ = tls13_resumption_master(
            alg, hs_->secrets13.master_secret, hash(alg, hs_->transcript), nullptr);
        ops_.hkdf = hs_->secrets13.hkdf_ops;
        record_established_session();
        hs_state_ = HsState::kDone;
        maybe_release_handshake_state();
        return TlsResult::kOk;
      }
      default:
        return TlsResult::kError;
    }
  }
}

// ----------------------------------------------------------- app data ----

TlsResult TlsConnection::read(Bytes* out) {
  // When resuming a paused read, keep the original output buffer — the
  // fiber already captured it.
  if (job_ == nullptr) read_out_ = out;
  return run_entry(&read_entry);
}

int TlsConnection::read_entry(TlsConnection* self) {
  if (self->hs_state_ != HsState::kDone)
    return to_int(TlsResult::kError);
  Record record;
  for (;;) {
    const TlsResult r = self->next_record(&record);
    if (r != TlsResult::kOk) {
      if (r == TlsResult::kError) {
        if (auto alert = self->records_.last_error_alert())
          self->queue_alert_inline(AlertLevel::kFatal, *alert);
      }
      return to_int(r);
    }
    switch (record.type) {
      case ContentType::kApplicationData:
        append(*self->read_out_, record.payload);
        ++self->ops_.cipher;
        return to_int(TlsResult::kOk);
      case ContentType::kAlert:
        return to_int(TlsResult::kClosed);
      case ContentType::kHandshake: {
        // Post-handshake message: a TLS 1.3 NewSessionTicket updates the
        // resumable session; anything else is skipped.
        if (self->version_ == ProtocolVersion::kTls13) {
          size_t consumed = 0;
          auto parsed = parse_handshake(record.payload, &consumed);
          if (parsed.is_ok() &&
              parsed.value().type == HandshakeType::kNewSessionTicket) {
            auto nst = NewSessionTicketMsg::parse(parsed.value().body);
            if (nst.is_ok() && !self->resumption_master13_.empty()) {
              ClientSession session;
              session.suite = self->suite_;
              session.ticket = nst.value().ticket;
              session.master_secret = self->resumption_master13_;
              self->established_session_ = std::move(session);
            }
          }
        }
        continue;
      }
      default:
        return to_int(TlsResult::kError);
    }
  }
}

TlsResult TlsConnection::write(BytesView data) {
  // A paused write job still references write_data_; only accept new data
  // when idle (resume calls pass anything, conventionally empty).
  if (job_ == nullptr) {
    write_data_.assign(data.begin(), data.end());
    // TX staging copy above the record layer — metered so the data plane's
    // bytes-copied-per-byte covers the whole path (DESIGN.md §11).
    records_.note_staging_copy(data.size());
  }
  return run_entry(&write_entry);
}

int TlsConnection::write_entry(TlsConnection* self) {
  if (self->hs_state_ != HsState::kDone)
    return to_int(TlsResult::kError);
  if (!self->write_data_.empty()) {
    const size_t fragments =
        (self->write_data_.size() + kMaxPlaintextFragment - 1) /
        kMaxPlaintextFragment;
    if (!self->records_
             .queue(ContentType::kApplicationData, self->write_data_)
             .is_ok())
      return to_int(TlsResult::kError);
    self->ops_.cipher += static_cast<int>(fragments);
    self->write_data_.clear();
  }
  return to_int(self->records_.flush());
}

TlsResult TlsConnection::shutdown() { return run_entry(&shutdown_entry); }

int TlsConnection::shutdown_entry(TlsConnection* self) {
  if (self->hs_state_ == HsState::kClosed) return to_int(TlsResult::kOk);
  const Bytes alert = {kAlertLevelWarning, kAlertCloseNotify};
  if (!self->records_.queue(ContentType::kAlert, alert).is_ok())
    return to_int(TlsResult::kError);
  self->last_alert_sent_ = AlertDescription::kCloseNotify;
  const TlsResult r = self->records_.flush();
  if (r == TlsResult::kOk) self->hs_state_ = HsState::kClosed;
  return to_int(r);
}

// --------------------------------------------------------------- alerts ----

void TlsConnection::queue_alert_inline(AlertLevel level,
                                       AlertDescription desc) {
  const Bytes alert = {static_cast<uint8_t>(level),
                       static_cast<uint8_t>(desc)};
  if (records_.queue(ContentType::kAlert, alert).is_ok()) {
    last_alert_sent_ = desc;
    (void)records_.flush();  // best-effort: the owner is tearing down anyway
  }
}

TlsResult TlsConnection::send_alert(AlertLevel level, AlertDescription desc) {
  if (job_ != nullptr) return TlsResult::kError;  // paused fiber owns the stream
  alert_level_ = level;
  alert_desc_ = desc;
  return run_entry(&alert_entry);
}

int TlsConnection::alert_entry(TlsConnection* self) {
  self->queue_alert_inline(self->alert_level_, self->alert_desc_);
  if (self->alert_desc_ == AlertDescription::kCloseNotify)
    self->hs_state_ = HsState::kClosed;
  else if (self->alert_level_ == AlertLevel::kFatal)
    self->hs_state_ = HsState::kFailed;
  return to_int(TlsResult::kOk);
}

}  // namespace qtls::tls
