#include "tls/record.h"

#include "common/log.h"
#include "crypto/gcm.h"

namespace qtls::tls {

namespace {
constexpr size_t kHeaderSize = 5;
constexpr size_t kIvSize = 16;
// Encrypted records grow by IV + MAC + padding; generous bound for parsing.
constexpr size_t kMaxCiphertextFragment = kMaxPlaintextFragment + 1024;
}  // namespace

RecordLayer::RecordLayer(Transport* transport,
                         engine::CryptoProvider* provider, HmacDrbg* iv_rng)
    : transport_(transport), provider_(provider), iv_rng_(iv_rng) {}

Status RecordLayer::queue(ContentType type, BytesView payload) {
  // Fragment: a payload larger than 16 KB becomes multiple records — each
  // one is one chained-cipher op once encryption is on (paper §5.4:
  // "one 128 KB file incurs eight cipher operations").
  if (payload.empty()) return queue_one(type, payload);
  size_t off = 0;
  while (off < payload.size()) {
    const size_t take = std::min(kMaxPlaintextFragment, payload.size() - off);
    QTLS_RETURN_IF_ERROR(queue_one(type, payload.subspan(off, take)));
    off += take;
  }
  return Status::ok();
}

namespace {
// RFC 8446 §5.3 nonce derivation: the 64-bit sequence number XORed into the
// low-order bytes of the static IV.
Bytes aead_nonce(const Bytes& iv, uint64_t seq) {
  Bytes nonce = iv;
  for (int i = 0; i < 8; ++i)
    nonce[nonce.size() - 1 - static_cast<size_t>(i)] ^=
        static_cast<uint8_t>(seq >> (8 * i));
  return nonce;
}
}  // namespace

Status RecordLayer::queue_one(ContentType type, BytesView fragment) {
  Bytes wire_payload;
  if (tx_.kind == DirectionState::Kind::kCbcHmac) {
    Bytes header;
    append_u8(header, static_cast<uint8_t>(type));
    append_u16(header, static_cast<uint16_t>(ProtocolVersion::kTls12));
    append_u16(header, static_cast<uint16_t>(fragment.size()));
    Bytes iv(kIvSize);
    iv_rng_->generate(iv.data(), iv.size());
    QTLS_ASSIGN_OR_RETURN(
        Bytes sealed,
        provider_->cipher_seal(tx_.keys, tx_.seq, header, iv, fragment));
    ++tx_.seq;
    wire_payload = std::move(iv);
    append(wire_payload, sealed);
  } else if (tx_.kind == DirectionState::Kind::kAead) {
    // AAD is the outer record header carrying the protected length.
    Bytes aad;
    append_u8(aad, static_cast<uint8_t>(type));
    append_u16(aad, static_cast<uint16_t>(ProtocolVersion::kTls12));
    append_u16(aad, static_cast<uint16_t>(fragment.size() + kGcmTagSize));
    const Bytes nonce = aead_nonce(tx_.aead.iv, tx_.seq);
    QTLS_ASSIGN_OR_RETURN(
        Bytes sealed, provider_->aead_seal(tx_.aead.key, nonce, aad, fragment));
    ++tx_.seq;
    wire_payload = std::move(sealed);
  } else {
    wire_payload.assign(fragment.begin(), fragment.end());
  }

  append_u8(send_buffer_, static_cast<uint8_t>(type));
  append_u16(send_buffer_, static_cast<uint16_t>(ProtocolVersion::kTls12));
  append_u16(send_buffer_, static_cast<uint16_t>(wire_payload.size()));
  append(send_buffer_, wire_payload);
  ++records_sent_;
  return Status::ok();
}

TlsResult RecordLayer::flush() {
  while (send_offset_ < send_buffer_.size()) {
    const IoResult io = transport_->write(send_buffer_.data() + send_offset_,
                                          send_buffer_.size() - send_offset_);
    switch (io.status) {
      case IoStatus::kOk:
        send_offset_ += io.bytes;
        break;
      case IoStatus::kWouldBlock:
        return TlsResult::kWantWrite;
      case IoStatus::kClosed:
      case IoStatus::kError:
        return TlsResult::kError;
    }
  }
  send_buffer_.clear();
  send_offset_ = 0;
  return TlsResult::kOk;
}

RecordLayer::ReadOutcome RecordLayer::read_record() {
  // Accumulate transport bytes until a full record is present.
  for (;;) {
    if (recv_buffer_.size() >= kHeaderSize) {
      const size_t len = static_cast<size_t>(recv_buffer_[3]) << 8 |
                         recv_buffer_[4];
      // RFC 5246 §6.2.1/§6.2.3: plaintext records are bounded by 2^14, and
      // protected records by 2^14 + expansion. Violations are fatal
      // record_overflow — the bytes are never buffered past this check.
      const size_t wire_cap = rx_.kind == DirectionState::Kind::kNone
                                  ? kMaxPlaintextFragment
                                  : kMaxCiphertextFragment;
      if (len > wire_cap) {
        last_error_alert_ = AlertDescription::kRecordOverflow;
        return {TlsResult::kError, std::nullopt};
      }
      if (recv_buffer_.size() >= kHeaderSize + len) {
        const auto type = static_cast<ContentType>(recv_buffer_[0]);
        Bytes wire_payload(recv_buffer_.begin() + kHeaderSize,
                           recv_buffer_.begin() +
                               static_cast<ptrdiff_t>(kHeaderSize + len));
        recv_buffer_.erase(recv_buffer_.begin(),
                           recv_buffer_.begin() +
                               static_cast<ptrdiff_t>(kHeaderSize + len));
        Record record;
        record.type = type;
        if (rx_.kind == DirectionState::Kind::kAead) {
          Bytes aad;
          append_u8(aad, static_cast<uint8_t>(type));
          append_u16(aad, static_cast<uint16_t>(ProtocolVersion::kTls12));
          append_u16(aad, static_cast<uint16_t>(wire_payload.size()));
          const Bytes nonce = aead_nonce(rx_.aead.iv, rx_.seq);
          auto opened =
              provider_->aead_open(rx_.aead.key, nonce, aad, wire_payload);
          if (!opened.is_ok()) {
            QTLS_WARN << "AEAD record open failed: "
                      << opened.status().to_string();
            last_error_alert_ = AlertDescription::kBadRecordMac;
            return {TlsResult::kError, std::nullopt};
          }
          ++rx_.seq;
          record.payload = std::move(opened).take();
        } else if (rx_.kind == DirectionState::Kind::kCbcHmac) {
          if (wire_payload.size() < kIvSize) {
            last_error_alert_ = AlertDescription::kDecodeError;
            return {TlsResult::kError, std::nullopt};
          }
          BytesView iv(wire_payload.data(), kIvSize);
          BytesView ct(wire_payload.data() + kIvSize,
                       wire_payload.size() - kIvSize);
          Bytes header3;
          append_u8(header3, static_cast<uint8_t>(type));
          append_u16(header3, static_cast<uint16_t>(ProtocolVersion::kTls12));
          auto opened =
              provider_->cipher_open(rx_.keys, rx_.seq, header3, iv, ct);
          if (!opened.is_ok()) {
            QTLS_WARN << "record open failed: "
                      << opened.status().to_string();
            last_error_alert_ = AlertDescription::kBadRecordMac;
            return {TlsResult::kError, std::nullopt};
          }
          ++rx_.seq;
          record.payload = std::move(opened).take();
        } else {
          record.payload = std::move(wire_payload);
        }
        // The *decrypted* fragment is also bounded by 2^14 (RFC 5246
        // §6.2.3): a protected record may not smuggle an oversized
        // plaintext inside the ciphertext expansion allowance.
        if (record.payload.size() > kMaxPlaintextFragment) {
          last_error_alert_ = AlertDescription::kRecordOverflow;
          return {TlsResult::kError, std::nullopt};
        }
        ++records_received_;
        return {TlsResult::kOk, std::move(record)};
      }
    }

    uint8_t chunk[4096];
    const IoResult io = transport_->read(chunk, sizeof(chunk));
    switch (io.status) {
      case IoStatus::kOk:
        recv_buffer_.insert(recv_buffer_.end(), chunk, chunk + io.bytes);
        break;
      case IoStatus::kWouldBlock:
        return {TlsResult::kWantRead, std::nullopt};
      case IoStatus::kClosed:
        return {TlsResult::kClosed, std::nullopt};
      case IoStatus::kError:
        return {TlsResult::kError, std::nullopt};
    }
  }
}

void RecordLayer::enable_encryption_tx(const CbcHmacKeys& keys) {
  tx_.kind = DirectionState::Kind::kCbcHmac;
  tx_.keys = keys;
  tx_.seq = 0;
}

void RecordLayer::enable_encryption_rx(const CbcHmacKeys& keys) {
  rx_.kind = DirectionState::Kind::kCbcHmac;
  rx_.keys = keys;
  rx_.seq = 0;
}

void RecordLayer::enable_encryption_tx(const AeadKeys& keys) {
  tx_.kind = DirectionState::Kind::kAead;
  tx_.aead = keys;
  tx_.seq = 0;
}

void RecordLayer::enable_encryption_rx(const AeadKeys& keys) {
  rx_.kind = DirectionState::Kind::kAead;
  rx_.aead = keys;
  rx_.seq = 0;
}

}  // namespace qtls::tls
