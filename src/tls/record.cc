#include "tls/record.h"

#include <vector>

#include "common/log.h"
#include "crypto/gcm.h"
#include "obs/metrics.h"

namespace qtls::tls {

namespace {
constexpr size_t kHeaderSize = 5;
constexpr size_t kIvSize = 16;
// Encrypted records grow by IV + MAC + padding; generous bound for parsing.
constexpr size_t kMaxCiphertextFragment = kMaxPlaintextFragment + 1024;
// Most transports cap a gathered write at IOV_MAX (>= 1024); far fewer
// segments per writev keeps the stack array small and still gathers 32
// records per syscall.
constexpr int kMaxFlushIov = 64;
// Consumed RX prefix tolerated before the buffer is compacted (amortizes
// the shift: one memmove per 16 KB consumed, not one erase per record).
constexpr size_t kRecvCompactThreshold = 16 * 1024;
constexpr size_t kReadChunk = 4096;

// Process-wide TX data-plane meters (DESIGN.md §11). The same names are
// interned by engine/provider.cc and engine/qat_engine.cc, so every staging
// copy in the path lands in one counter.
struct RecordObsCounters {
  obs::Counter bytes_copied, bytes_sent;
  RecordObsCounters() {
    auto& reg = obs::MetricsRegistry::global();
    bytes_copied = reg.counter("record.bytes_copied");
    bytes_sent = reg.counter("record.bytes_sent");
  }
};

RecordObsCounters& obs_counters() {
  static RecordObsCounters counters;
  return counters;
}
}  // namespace

RecordLayer::RecordLayer(Transport* transport,
                         engine::CryptoProvider* provider, HmacDrbg* iv_rng,
                         bool legacy_coalesced_tx)
    : transport_(transport),
      provider_(provider),
      iv_rng_(iv_rng),
      legacy_tx_(legacy_coalesced_tx) {}

void RecordLayer::count_copy(size_t n) {
  bytes_copied_ += n;
  obs_counters().bytes_copied.add(n);
}

void RecordLayer::note_staging_copy(size_t n) { count_copy(n); }

namespace {
// RFC 8446 §5.3 nonce derivation: the 64-bit sequence number XORed into the
// low-order bytes of the static IV.
Bytes aead_nonce(const Bytes& iv, uint64_t seq) {
  Bytes nonce = iv;
  for (int i = 0; i < 8; ++i)
    nonce[nonce.size() - 1 - static_cast<size_t>(i)] ^=
        static_cast<uint8_t>(seq >> (8 * i));
  return nonce;
}

void append_record_header(Bytes& out, ContentType type, size_t wire_len) {
  append_u8(out, static_cast<uint8_t>(type));
  append_u16(out, static_cast<uint16_t>(ProtocolVersion::kTls12));
  append_u16(out, static_cast<uint16_t>(wire_len));
}
}  // namespace

Status RecordLayer::queue(ContentType type, BytesView payload) {
  return queue_many(type, std::span<const BytesView>(&payload, 1));
}

Status RecordLayer::queue_many(ContentType type,
                               std::span<const BytesView> payloads) {
  // Fragment: a payload larger than 16 KB becomes multiple records — each
  // one is one chained-cipher op once encryption is on (paper §5.4:
  // "one 128 KB file incurs eight cipher operations").
  std::vector<BytesView> fragments;
  for (const BytesView& payload : payloads) {
    if (payload.empty()) {
      fragments.push_back(payload);
      continue;
    }
    size_t off = 0;
    while (off < payload.size()) {
      const size_t take =
          std::min(kMaxPlaintextFragment, payload.size() - off);
      fragments.push_back(payload.subspan(off, take));
      off += take;
    }
  }
  if (fragments.empty()) return Status::ok();

  if (legacy_tx_) {
    for (const BytesView& fragment : fragments)
      QTLS_RETURN_IF_ERROR(queue_one_legacy(type, fragment));
    return Status::ok();
  }

  if (tx_.kind == DirectionState::Kind::kNone) {
    for (const BytesView& fragment : fragments)
      queue_plaintext(type, fragment);
    return Status::ok();
  }
  // All fragments of this call go to the provider as ONE batch (a single
  // submit_batch() dispatch on the QAT backend, an inline loop in software).
  return seal_batch_into_chain(type, fragments);
}

void RecordLayer::queue_plaintext(ContentType type, BytesView fragment) {
  TxBlock header;
  append_record_header(header.data, type, fragment.size());
  send_chain_.push_back(std::move(header));
  if (!fragment.empty()) {
    TxBlock body;
    body.data.assign(fragment.begin(), fragment.end());
    count_copy(body.data.size());
    send_chain_.push_back(std::move(body));
  }
  ++records_sent_;
}

Status RecordLayer::seal_batch_into_chain(
    ContentType type, const std::vector<BytesView>& fragments) {
  const size_t n = fragments.size();
  // Blocks are built aside and spliced in only if the whole batch seals
  // (matching the old path, where a failed seal queued nothing). A deque
  // keeps Bytes addresses stable while the provider appends into them.
  std::deque<TxBlock> pending;
  Status sealed = Status::ok();

  if (tx_.kind == DirectionState::Kind::kCbcHmac) {
    std::vector<Bytes> headers(n);  // 5-byte MAC headers, true fragment len
    std::vector<engine::CipherSealJob> jobs(n);
    for (size_t i = 0; i < n; ++i) {
      append_record_header(headers[i], type, fragments[i].size());
      TxBlock body;
      // One allocation per record: IV + ciphertext (fragment + MAC + pad).
      body.data.reserve(kIvSize + fragments[i].size() + 80);
      body.data.resize(kIvSize);  // explicit IV prefixes the wire payload
      iv_rng_->generate(body.data.data(), kIvSize);
      pending.push_back(std::move(body));
      Bytes* out = &pending.back().data;
      jobs[i] = {tx_.seq + i, headers[i], BytesView(out->data(), kIvSize),
                 fragments[i], out};
    }
    sealed = provider_->cipher_seal_batch(tx_.keys, jobs);
  } else {
    std::vector<Bytes> nonces(n);
    std::vector<Bytes> aads(n);  // AAD carries the protected length
    std::vector<engine::AeadSealJob> jobs(n);
    for (size_t i = 0; i < n; ++i) {
      nonces[i] = aead_nonce(tx_.aead.iv, tx_.seq + i);
      append_record_header(aads[i], type, fragments[i].size() + kGcmTagSize);
      pending.emplace_back();
      jobs[i] = {nonces[i], aads[i], fragments[i], &pending.back().data};
    }
    sealed = provider_->aead_seal_batch(tx_.aead.key, jobs);
  }
  QTLS_RETURN_IF_ERROR(sealed);

  // Seals landed: frame each payload block with its outer header (written
  // only now — the CBC wire length depends on MAC + padding) and splice.
  tx_.seq += n;
  records_sent_ += n;
  for (TxBlock& body : pending) {
    TxBlock header;
    append_record_header(header.data, type, body.data.size());
    send_chain_.push_back(std::move(header));
    send_chain_.push_back(std::move(body));
  }
  return Status::ok();
}

Status RecordLayer::queue_one_legacy(ContentType type, BytesView fragment) {
  // The pre-batching TX path, preserved byte-for-byte: one seal per record,
  // the sealed payload staged through wire_payload, everything coalesced
  // into one flat buffer. Kept as the property-test reference and the
  // copy-meter baseline (three passes over every payload byte).
  Bytes wire_payload;
  if (tx_.kind == DirectionState::Kind::kCbcHmac) {
    Bytes header;
    append_record_header(header, type, fragment.size());
    Bytes iv(kIvSize);
    iv_rng_->generate(iv.data(), iv.size());
    QTLS_ASSIGN_OR_RETURN(
        Bytes sealed,
        provider_->cipher_seal(tx_.keys, tx_.seq, header, iv, fragment));
    ++tx_.seq;
    wire_payload = std::move(iv);
    count_copy(sealed.size());
    append(wire_payload, sealed);
  } else if (tx_.kind == DirectionState::Kind::kAead) {
    Bytes aad;
    append_record_header(aad, type, fragment.size() + kGcmTagSize);
    const Bytes nonce = aead_nonce(tx_.aead.iv, tx_.seq);
    QTLS_ASSIGN_OR_RETURN(
        Bytes sealed, provider_->aead_seal(tx_.aead.key, nonce, aad, fragment));
    ++tx_.seq;
    wire_payload = std::move(sealed);
  } else {
    count_copy(fragment.size());
    wire_payload.assign(fragment.begin(), fragment.end());
  }

  if (send_chain_.empty()) send_chain_.emplace_back();
  Bytes& coalesced = send_chain_.back().data;
  append_record_header(coalesced, type, wire_payload.size());
  count_copy(wire_payload.size());
  append(coalesced, wire_payload);
  ++records_sent_;
  return Status::ok();
}

TlsResult RecordLayer::flush() {
  while (!send_chain_.empty()) {
    struct iovec iov[kMaxFlushIov];
    int cnt = 0;
    for (const TxBlock& block : send_chain_) {
      if (cnt == kMaxFlushIov) break;
      const size_t left = block.data.size() - block.off;
      if (left == 0) continue;  // empty-bodied record (zero-length fragment)
      iov[cnt].iov_base =
          const_cast<uint8_t*>(block.data.data() + block.off);
      iov[cnt].iov_len = left;
      ++cnt;
    }
    if (cnt == 0) {
      send_chain_.clear();
      break;
    }
    const IoResult io = transport_->writev(iov, cnt);
    switch (io.status) {
      case IoStatus::kOk: {
        bytes_sent_ += io.bytes;
        obs_counters().bytes_sent.add(io.bytes);
        size_t consumed = io.bytes;
        while (!send_chain_.empty()) {
          TxBlock& front = send_chain_.front();
          const size_t left = front.data.size() - front.off;
          if (left > consumed) {
            front.off += consumed;
            consumed = 0;
            break;
          }
          consumed -= left;
          send_chain_.pop_front();
        }
        break;
      }
      case IoStatus::kWouldBlock:
        return TlsResult::kWantWrite;
      case IoStatus::kClosed:
      case IoStatus::kError:
        return TlsResult::kError;
    }
  }
  return TlsResult::kOk;
}

void RecordLayer::compact_recv_buffer() {
  if (recv_off_ == 0) return;
  if (recv_off_ == recv_buffer_.size()) {
    // Fully drained: resetting the cursor is free (no shift).
    recv_buffer_.clear();
    recv_off_ = 0;
    return;
  }
  if (recv_off_ < kRecvCompactThreshold) return;
  recv_buffer_.erase(recv_buffer_.begin(),
                     recv_buffer_.begin() + static_cast<ptrdiff_t>(recv_off_));
  recv_off_ = 0;
  ++rx_compactions_;
}

void RecordLayer::shrink_after_handshake() {
  // Unconditionally drop the consumed prefix (ignore the amortization
  // threshold — this runs once per connection), then return the high-water
  // capacity to the allocator. A clean handshake leaves the buffer empty,
  // so this is usually a free() of the whole allocation.
  if (recv_off_ > 0) {
    recv_buffer_.erase(
        recv_buffer_.begin(),
        recv_buffer_.begin() + static_cast<ptrdiff_t>(recv_off_));
    recv_off_ = 0;
  }
  recv_buffer_.shrink_to_fit();
}

size_t RecordLayer::heap_footprint() const {
  size_t n = recv_buffer_.capacity();
  for (const TxBlock& block : send_chain_) n += block.data.capacity();
  return n;
}

RecordLayer::ReadOutcome RecordLayer::read_record() {
  // Accumulate transport bytes until a full record is present. Consumption
  // advances an offset cursor; the buffer compacts amortized (satellite:
  // no per-record front-erase).
  for (;;) {
    const size_t available = recv_buffer_.size() - recv_off_;
    if (available >= kHeaderSize) {
      const uint8_t* base = recv_buffer_.data() + recv_off_;
      const size_t len = static_cast<size_t>(base[3]) << 8 | base[4];
      // RFC 5246 §6.2.1/§6.2.3: plaintext records are bounded by 2^14, and
      // protected records by 2^14 + expansion. Violations are fatal
      // record_overflow — the bytes are never buffered past this check.
      const size_t wire_cap = rx_.kind == DirectionState::Kind::kNone
                                  ? kMaxPlaintextFragment
                                  : kMaxCiphertextFragment;
      if (len > wire_cap) {
        last_error_alert_ = AlertDescription::kRecordOverflow;
        return {TlsResult::kError, std::nullopt};
      }
      if (available >= kHeaderSize + len) {
        const auto type = static_cast<ContentType>(base[0]);
        Bytes wire_payload(base + kHeaderSize, base + kHeaderSize + len);
        recv_off_ += kHeaderSize + len;
        compact_recv_buffer();
        Record record;
        record.type = type;
        if (rx_.kind == DirectionState::Kind::kAead) {
          Bytes aad;
          append_u8(aad, static_cast<uint8_t>(type));
          append_u16(aad, static_cast<uint16_t>(ProtocolVersion::kTls12));
          append_u16(aad, static_cast<uint16_t>(wire_payload.size()));
          const Bytes nonce = aead_nonce(rx_.aead.iv, rx_.seq);
          auto opened =
              provider_->aead_open(rx_.aead.key, nonce, aad, wire_payload);
          if (!opened.is_ok()) {
            QTLS_WARN << "AEAD record open failed: "
                      << opened.status().to_string();
            last_error_alert_ = AlertDescription::kBadRecordMac;
            return {TlsResult::kError, std::nullopt};
          }
          ++rx_.seq;
          record.payload = std::move(opened).take();
        } else if (rx_.kind == DirectionState::Kind::kCbcHmac) {
          if (wire_payload.size() < kIvSize) {
            last_error_alert_ = AlertDescription::kDecodeError;
            return {TlsResult::kError, std::nullopt};
          }
          BytesView iv(wire_payload.data(), kIvSize);
          BytesView ct(wire_payload.data() + kIvSize,
                       wire_payload.size() - kIvSize);
          Bytes header3;
          append_u8(header3, static_cast<uint8_t>(type));
          append_u16(header3, static_cast<uint16_t>(ProtocolVersion::kTls12));
          auto opened =
              provider_->cipher_open(rx_.keys, rx_.seq, header3, iv, ct);
          if (!opened.is_ok()) {
            QTLS_WARN << "record open failed: "
                      << opened.status().to_string();
            last_error_alert_ = AlertDescription::kBadRecordMac;
            return {TlsResult::kError, std::nullopt};
          }
          ++rx_.seq;
          record.payload = std::move(opened).take();
        } else {
          record.payload = std::move(wire_payload);
        }
        // The *decrypted* fragment is also bounded by 2^14 (RFC 5246
        // §6.2.3): a protected record may not smuggle an oversized
        // plaintext inside the ciphertext expansion allowance.
        if (record.payload.size() > kMaxPlaintextFragment) {
          last_error_alert_ = AlertDescription::kRecordOverflow;
          return {TlsResult::kError, std::nullopt};
        }
        ++records_received_;
        return {TlsResult::kOk, std::move(record)};
      }
    }

    // Read straight into the buffer tail (no bounce through a stack chunk).
    if (recv_off_ == recv_buffer_.size() && recv_off_ != 0) {
      recv_buffer_.clear();
      recv_off_ = 0;
    }
    const size_t old_size = recv_buffer_.size();
    recv_buffer_.resize(old_size + kReadChunk);
    const IoResult io = transport_->read(recv_buffer_.data() + old_size,
                                         kReadChunk);
    recv_buffer_.resize(old_size +
                        (io.status == IoStatus::kOk ? io.bytes : 0));
    switch (io.status) {
      case IoStatus::kOk:
        break;
      case IoStatus::kWouldBlock:
        // Fully drained and going idle: drop the read chunk's capacity so a
        // parked keepalive connection holds cursors, not a 4 KB buffer. A
        // buffered partial record keeps its storage.
        if (idle_shrink_ && recv_buffer_.empty() && recv_off_ == 0)
          Bytes().swap(recv_buffer_);
        return {TlsResult::kWantRead, std::nullopt};
      case IoStatus::kClosed:
        return {TlsResult::kClosed, std::nullopt};
      case IoStatus::kError:
        return {TlsResult::kError, std::nullopt};
    }
  }
}

void RecordLayer::enable_encryption_tx(const CbcHmacKeys& keys) {
  tx_.kind = DirectionState::Kind::kCbcHmac;
  tx_.keys = keys;
  tx_.seq = 0;
}

void RecordLayer::enable_encryption_rx(const CbcHmacKeys& keys) {
  rx_.kind = DirectionState::Kind::kCbcHmac;
  rx_.keys = keys;
  rx_.seq = 0;
}

void RecordLayer::enable_encryption_tx(const AeadKeys& keys) {
  tx_.kind = DirectionState::Kind::kAead;
  tx_.aead = keys;
  tx_.seq = 0;
}

void RecordLayer::enable_encryption_rx(const AeadKeys& keys) {
  rx_.kind = DirectionState::Kind::kAead;
  rx_.aead = keys;
  rx_.seq = 0;
}

}  // namespace qtls::tls
