// TLS record layer: 5-byte header framing, 16 KB fragmentation (the unit the
// paper's §5.4 counts cipher ops by), per-direction protection state with
// explicit-IV CBC + HMAC, and non-blocking buffered transport I/O.
#pragma once

#include <deque>
#include <optional>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/kdf.h"
#include "engine/provider.h"
#include "tls/transport.h"
#include "tls/types.h"

namespace qtls::tls {

struct Record {
  ContentType type = ContentType::kHandshake;
  Bytes payload;  // decrypted fragment
};

// AES-GCM record keys: traffic key + the static IV the per-record nonce is
// derived from (RFC 8446 §5.3: nonce = iv XOR seq).
struct AeadKeys {
  Bytes key;  // 16 bytes
  Bytes iv;   // 12 bytes
};

// Per-direction record protection state.
struct DirectionState {
  enum class Kind : uint8_t { kNone, kCbcHmac, kAead };
  Kind kind = Kind::kNone;
  CbcHmacKeys keys;
  AeadKeys aead;
  uint64_t seq = 0;
};

class RecordLayer {
 public:
  RecordLayer(Transport* transport, engine::CryptoProvider* provider,
              HmacDrbg* iv_rng);

  // Queue a plaintext fragment for sending (fragments > 16 KB are split).
  // Encryption happens at queue time (counts cipher ops); the bytes then sit
  // in the send buffer until flushed.
  Status queue(ContentType type, BytesView payload);
  // Push buffered bytes into the transport. kOk = drained, kWantWrite =
  // transport backpressure.
  TlsResult flush();
  bool send_buffer_empty() const { return send_buffer_.empty(); }

  // Try to read one complete record from the transport. nullopt with
  // result kWantRead when bytes are not yet available.
  struct ReadOutcome {
    TlsResult result = TlsResult::kOk;
    std::optional<Record> record;
  };
  ReadOutcome read_record();

  void enable_encryption_tx(const CbcHmacKeys& keys);
  void enable_encryption_rx(const CbcHmacKeys& keys);
  void enable_encryption_tx(const AeadKeys& keys);
  void enable_encryption_rx(const AeadKeys& keys);
  bool tx_encrypted() const {
    return tx_.kind != DirectionState::Kind::kNone;
  }
  bool rx_encrypted() const {
    return rx_.kind != DirectionState::Kind::kNone;
  }

  uint64_t records_sent() const { return records_sent_; }
  uint64_t records_received() const { return records_received_; }

  // The alert the last kError from read_record() deserves (RFC 5246 §7.2):
  // record_overflow for length-bound violations, bad_record_mac for failed
  // record protection. Unset when no read error has occurred.
  std::optional<AlertDescription> last_error_alert() const {
    return last_error_alert_;
  }

 private:
  Status queue_one(ContentType type, BytesView fragment);

  Transport* transport_;
  engine::CryptoProvider* provider_;
  HmacDrbg* iv_rng_;

  DirectionState tx_;
  DirectionState rx_;

  Bytes send_buffer_;
  size_t send_offset_ = 0;
  Bytes recv_buffer_;

  uint64_t records_sent_ = 0;
  uint64_t records_received_ = 0;
  std::optional<AlertDescription> last_error_alert_;
};

}  // namespace qtls::tls
