// TLS record layer: 5-byte header framing, 16 KB fragmentation (the unit the
// paper's §5.4 counts cipher ops by), per-direction protection state with
// explicit-IV CBC + HMAC, and non-blocking buffered transport I/O.
//
// TX data plane (DESIGN.md §11): queued records live in an iovec chain of
// blocks (a 5-byte header block + a sealed payload block per record, never
// coalesced); multi-fragment payloads are sealed through the provider's
// batched seal APIs (ONE device submission for N records), and the provider
// encrypts directly into each record's payload block. flush() gathers the
// chain into writev() with per-block partial-write offsets.
#pragma once

#include <deque>
#include <optional>
#include <span>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/kdf.h"
#include "engine/provider.h"
#include "tls/transport.h"
#include "tls/types.h"

namespace qtls::tls {

struct Record {
  ContentType type = ContentType::kHandshake;
  Bytes payload;  // decrypted fragment
};

// AES-GCM record keys: traffic key + the static IV the per-record nonce is
// derived from (RFC 8446 §5.3: nonce = iv XOR seq).
struct AeadKeys {
  Bytes key;  // 16 bytes
  Bytes iv;   // 12 bytes
};

// Per-direction record protection state.
struct DirectionState {
  enum class Kind : uint8_t { kNone, kCbcHmac, kAead };
  Kind kind = Kind::kNone;
  CbcHmacKeys keys;
  AeadKeys aead;
  uint64_t seq = 0;
};

class RecordLayer {
 public:
  // `legacy_coalesced_tx` reproduces the pre-batching TX path byte-for-byte
  // (single-record seals staged through a coalesced buffer) — kept as the
  // reference for the data-plane property tests and the copy-meter baseline.
  RecordLayer(Transport* transport, engine::CryptoProvider* provider,
              HmacDrbg* iv_rng, bool legacy_coalesced_tx = false);

  // Queue a plaintext fragment for sending (fragments > 16 KB are split).
  // Encryption happens at queue time (counts cipher ops); all fragments of
  // one call are sealed in ONE batched provider submission. The bytes then
  // sit in the send chain until flushed.
  Status queue(ContentType type, BytesView payload);
  // Queue several payloads at once: every fragment of every payload joins a
  // single record batch (one provider submission for the whole span).
  Status queue_many(ContentType type, std::span<const BytesView> payloads);
  // Push buffered bytes into the transport. kOk = drained, kWantWrite =
  // transport backpressure.
  TlsResult flush();
  bool send_buffer_empty() const { return send_chain_.empty(); }

  // Try to read one complete record from the transport. nullopt with
  // result kWantRead when bytes are not yet available.
  struct ReadOutcome {
    TlsResult result = TlsResult::kOk;
    std::optional<Record> record;
  };
  ReadOutcome read_record();

  void enable_encryption_tx(const CbcHmacKeys& keys);
  void enable_encryption_rx(const CbcHmacKeys& keys);
  void enable_encryption_tx(const AeadKeys& keys);
  void enable_encryption_rx(const AeadKeys& keys);
  bool tx_encrypted() const {
    return tx_.kind != DirectionState::Kind::kNone;
  }
  bool rx_encrypted() const {
    return rx_.kind != DirectionState::Kind::kNone;
  }

  uint64_t records_sent() const { return records_sent_; }
  uint64_t records_received() const { return records_received_; }

  // --- TX copy meter (DESIGN.md §11) --------------------------------------
  // Payload bytes memcpy'd through a staging buffer on this layer's TX path
  // (mirrored into the global obs counter "record.bytes_copied").
  uint64_t bytes_copied() const { return bytes_copied_; }
  // Wire bytes handed to the transport by flush().
  uint64_t bytes_sent() const { return bytes_sent_; }
  // Callers stamp TX staging copies made above this layer (e.g. the
  // connection's write() scratch buffer) so the meter covers the whole path.
  void note_staging_copy(size_t n);

  // --- RX buffer health ----------------------------------------------------
  // Amortized compactions of the receive buffer (offset-cursor consumption;
  // many small records must not shift or reallocate per record).
  uint64_t rx_compactions() const { return rx_compactions_; }
  size_t recv_buffer_capacity() const { return recv_buffer_.capacity(); }

  // Established-state shrink (DESIGN.md §14): releases the receive buffer's
  // handshake high-water capacity, keeping only bytes not yet parsed. An
  // idle established connection should pin record keys and cursors, not the
  // multi-KB flight the handshake happened to buffer.
  void shrink_after_handshake();
  // Idle-shrink discipline (DESIGN.md §14): when a read drains the receive
  // buffer completely and the transport would block, release the buffer's
  // capacity instead of pinning the 4 KB read chunk per idle connection.
  // Costs one allocation per epoll wakeup on active connections — noise
  // next to record crypto — and keeps a million keepalive connections at
  // cursor-sized RX state. Off by default (the retain-mode baseline).
  void set_idle_shrink(bool on) { idle_shrink_ = on; }
  // Approximate heap bytes owned by this layer's buffers (RX buffer + TX
  // chain) — feeds TlsConnection::heap_footprint and memory.bytes_per_conn.
  size_t heap_footprint() const;

  // The alert the last kError from read_record() deserves (RFC 5246 §7.2):
  // record_overflow for length-bound violations, bad_record_mac for failed
  // record protection. Unset when no read error has occurred.
  std::optional<AlertDescription> last_error_alert() const {
    return last_error_alert_;
  }

 private:
  // One link of the TX chain; `off` tracks how much the transport consumed.
  struct TxBlock {
    Bytes data;
    size_t off = 0;
  };

  // Seal `fragments` (each <= 16 KB) as one record batch into the chain.
  Status seal_batch_into_chain(ContentType type,
                               const std::vector<BytesView>& fragments);
  void queue_plaintext(ContentType type, BytesView fragment);
  // Pre-change single-record path, byte-for-byte (property-test reference).
  Status queue_one_legacy(ContentType type, BytesView fragment);
  void compact_recv_buffer();
  void count_copy(size_t n);

  Transport* transport_;
  engine::CryptoProvider* provider_;
  HmacDrbg* iv_rng_;
  bool legacy_tx_;
  bool idle_shrink_ = false;

  DirectionState tx_;
  DirectionState rx_;

  std::deque<TxBlock> send_chain_;
  Bytes recv_buffer_;
  size_t recv_off_ = 0;  // consumed prefix of recv_buffer_

  uint64_t records_sent_ = 0;
  uint64_t records_received_ = 0;
  uint64_t bytes_copied_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t rx_compactions_ = 0;
  std::optional<AlertDescription> last_error_alert_;
};

}  // namespace qtls::tls
