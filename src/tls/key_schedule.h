// Key derivation for both protocol versions.
//
// TLS 1.2 (RFC 5246): PRF-based — master secret, key block, Finished verify
// data. Every PRF call goes through the crypto provider, so in offload
// configurations these are the R_prf requests of §4.3 and Table 1's 4 PRF
// ops per full handshake (master + key expansion + 2 Finished).
//
// TLS 1.3 (RFC 8446 shape): HKDF-based key schedule. Deliberately computed
// directly (NOT through the provider): the paper's §5.2 explains HKDF cannot
// be offloaded through the QAT Engine, which is why Fig. 8's gain is lower.
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "tls/record.h"
#include "engine/provider.h"
#include "tls/types.h"

namespace qtls::tls {

struct SessionKeys {
  CbcHmacKeys client_write;  // client -> server protection
  CbcHmacKeys server_write;  // server -> client protection
};

// --- TLS 1.2 ---------------------------------------------------------------

Result<Bytes> tls12_master_secret(engine::CryptoProvider* provider,
                                  HashAlg prf, BytesView premaster,
                                  BytesView client_random,
                                  BytesView server_random);

Result<SessionKeys> tls12_key_expansion(engine::CryptoProvider* provider,
                                        const CipherSuiteInfo& suite,
                                        BytesView master,
                                        BytesView client_random,
                                        BytesView server_random);

// verify_data for a Finished message ("client finished"/"server finished").
Result<Bytes> tls12_finished_verify(engine::CryptoProvider* provider,
                                    HashAlg prf, BytesView master,
                                    const std::string& label,
                                    BytesView transcript_hash);

// --- TLS 1.3 ---------------------------------------------------------------

struct Tls13Secrets {
  Bytes handshake_secret;
  Bytes client_hs_traffic;
  Bytes server_hs_traffic;
  Bytes master_secret;
  Bytes client_app_traffic;
  Bytes server_app_traffic;
  // Count of HKDF invocations performed (for the Fig. 8 cost accounting).
  int hkdf_ops = 0;
};

// Runs the schedule up to the handshake traffic secrets. `psk` is empty for
// a full handshake; for resumption it is the resumption master secret from
// the NewSessionTicket (psk_dhe_ke: PSK feeds the early secret, the fresh
// ECDHE share feeds the handshake secret — forward secrecy is kept).
Tls13Secrets tls13_handshake_secrets(HashAlg alg, BytesView ecdhe_shared,
                                     BytesView transcript_hash_ch_sh,
                                     BytesView psk = {});
// Resumption master secret (RFC 8446 §7.1 "res master"), sealed into
// TLS 1.3 tickets.
Bytes tls13_resumption_master(HashAlg alg, BytesView master_secret,
                              BytesView transcript_hash_full, int* hkdf_ops);
// Extends with application traffic secrets (transcript through server
// Finished).
void tls13_application_secrets(HashAlg alg, Tls13Secrets* secrets,
                               BytesView transcript_hash_full);

// Traffic secret -> record protection keys. The AEAD form (RFC 8446 §7.3:
// "key" + "iv" expansions) is the TLS 1.3 path; the CBC-HMAC form is kept
// for tests that exercise the legacy transform.
AeadKeys tls13_aead_keys(HashAlg alg, BytesView traffic_secret,
                         const CipherSuiteInfo& suite, int* hkdf_ops);
CbcHmacKeys tls13_traffic_keys(HashAlg alg, BytesView traffic_secret,
                               const CipherSuiteInfo& suite, int* hkdf_ops);

// Finished verify data: HMAC(finished_key, transcript_hash).
Bytes tls13_finished_verify(HashAlg alg, BytesView traffic_secret,
                            BytesView transcript_hash, int* hkdf_ops);

// --- Established-state release (DESIGN.md §14) ------------------------------
// Secure-wipe for the key-schedule scratch a connection releases once it
// reaches established: the record layer keeps its own copies of the traffic
// keys, so every derivation intermediate here is zeroed in place before the
// handshake scratch returns to its slab. Wiping (not just freeing) matters —
// slab slots are recycled into the next connection's scratch.
void wipe_key_schedule(Bytes& b);
void wipe_key_schedule(CbcHmacKeys& k);
void wipe_key_schedule(AeadKeys& k);
void wipe_key_schedule(SessionKeys& k);
void wipe_key_schedule(Tls13Secrets& s);

}  // namespace qtls::tls
