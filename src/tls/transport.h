// Byte transport under the TLS record layer. Implementations: the in-memory
// duplex pipe (net/memory_transport.h) used by unit/integration tests and
// the non-blocking socket transport (net/socket_transport.h) used by the
// example servers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace qtls::tls {

enum class IoStatus : uint8_t {
  kOk,        // >= 1 byte transferred
  kWouldBlock,
  kClosed,    // orderly EOF (read side)
  kError,
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  size_t bytes = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual IoResult read(uint8_t* buf, size_t len) = 0;
  virtual IoResult write(const uint8_t* buf, size_t len) = 0;
};

}  // namespace qtls::tls
