// Byte transport under the TLS record layer. Implementations: the in-memory
// duplex pipe (net/memory_transport.h) used by unit/integration tests and
// the non-blocking socket transport (net/socket_transport.h) used by the
// example servers.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>

namespace qtls::tls {

enum class IoStatus : uint8_t {
  kOk,        // >= 1 byte transferred
  kWouldBlock,
  kClosed,    // orderly EOF (read side)
  kError,
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  size_t bytes = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;
  virtual IoResult read(uint8_t* buf, size_t len) = 0;
  virtual IoResult write(const uint8_t* buf, size_t len) = 0;

  // Gathering write over `iovcnt` segments. May transfer fewer bytes than
  // the vector holds (partial write); kOk with bytes > 0 wins over a
  // would-block encountered mid-vector. The default loops write() per
  // segment for transports without native scatter-gather.
  virtual IoResult writev(const struct iovec* iov, int iovcnt) {
    size_t total = 0;
    for (int i = 0; i < iovcnt; ++i) {
      if (iov[i].iov_len == 0) continue;
      const IoResult r =
          write(static_cast<const uint8_t*>(iov[i].iov_base), iov[i].iov_len);
      if (r.status != IoStatus::kOk) {
        if (total > 0) return {IoStatus::kOk, total};
        return {r.status, 0};
      }
      total += r.bytes;
      if (r.bytes < iov[i].iov_len) break;  // short write: stop gathering
    }
    return {IoStatus::kOk, total};
  }
};

}  // namespace qtls::tls
