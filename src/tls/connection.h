// TlsConnection: the SSL* analogue — non-blocking handshake/read/write/
// shutdown entry points returning the TlsResult codes the paper's Nginx
// patches dispatch on (§4.2). In async mode every entry point runs inside a
// fiber AsyncJob; a crypto offload inside the QAT engine pauses the job and
// the call returns kWantAsync. Resuming is calling the same entry point
// again after the async event — the connection keeps the paused job.
//
// Layering of re-entry concerns:
//   transport readiness  -> explicit handshake state machine (kWantRead
//                           finishes the job, as in OpenSSL)
//   crypto completion    -> fiber pause/resume inside one state
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "asyncx/job.h"
#include "common/slab.h"
#include "tls/context.h"
#include "tls/key_schedule.h"
#include "tls/messages.h"
#include "tls/record.h"

namespace qtls::tls {

// Client-side resumable session (the s_time "reuse" data).
struct ClientSession {
  CipherSuite suite = CipherSuite::kTlsRsaWithAes128CbcSha;
  Bytes session_id;
  Bytes ticket;
  Bytes master_secret;
};

// Handshake-phase state of one connection (DESIGN.md §14): everything a
// connection needs only until it reaches established — randoms, transcript,
// reassembly buffer, key-exchange material, key-schedule intermediates.
// Lives in a per-worker slab (heap when no pool is supplied) and is wiped
// and released wholesale at the kDone transition, so an idle established
// connection carries only record keys, cursors, and timer links. The
// retain_handshake_state context knob keeps it alive for A/B footprint
// measurement.
struct HandshakeScratch {
  Bytes client_random;
  Bytes server_random;
  Bytes session_id;
  Bytes premaster;
  Bytes master_secret;
  SessionKeys session_keys;
  bool keys_derived = false;
  engine::KeyShare ecdhe_share;      // our ephemeral share
  Bytes peer_point;                  // peer ECDSA public key (client side)
  bool peer_ecdsa_p384 = false;      // which prime curve signed the SKE
  CurveId ske_curve = CurveId::kP256;  // ECDHE group from ServerKeyExchange
  Bytes server_kx_point;             // server ephemeral point (client side)
  RsaPublicKey peer_rsa;             // client: server's key from Certificate
  Bytes transcript;                  // running handshake transcript
  std::optional<ClientSession> offered_session;
  Bytes pending_ticket;              // client: ticket received this handshake

  // TLS 1.3 state (AES-GCM record protection, RFC 8446 §7.3).
  Tls13Secrets secrets13;
  AeadKeys client_hs_keys13, server_hs_keys13;
  AeadKeys client_app_keys13, server_app_keys13;

  // Buffer of handshake messages extracted from records but not consumed.
  Bytes hs_buffer;

  // Zero every secret-bearing field in place (slab slots are recycled).
  void wipe_secrets();
  // Approximate heap bytes owned by this scratch (excluding sizeof(*this)).
  size_t heap_footprint() const;
};

// Per-connection crypto op accounting — verifies Table 1 in tests/benches.
struct OpCounters {
  int rsa = 0;       // RSA private ops
  int ecc = 0;       // EC point-multiplication ops
  int prf = 0;       // TLS 1.2 PRF invocations
  int hkdf = 0;      // TLS 1.3 HKDF invocations (not offloadable)
  int cipher = 0;    // record protection ops
};

class TlsConnection {
 public:
  // `scratch_pool` (optional) slab-allocates the handshake scratch; without
  // one the scratch lives on the heap. Single-threaded pools: pass a pool
  // owned by the same worker/thread that drives this connection.
  TlsConnection(TlsContext* ctx, Transport* transport,
                common::SlabPool<HandshakeScratch>* scratch_pool = nullptr);
  ~TlsConnection();

  TlsConnection(const TlsConnection&) = delete;
  TlsConnection& operator=(const TlsConnection&) = delete;

  // Drive the handshake. kOk = complete; kWantRead/kWantWrite = transport;
  // kWantAsync = offload in flight, reschedule this same call (§4.2).
  TlsResult handshake();

  // Read one record's worth of application data (appends to *out).
  TlsResult read(Bytes* out);
  // Write application data (fragments to 16 KB records).
  TlsResult write(BytesView data);
  // Send close_notify.
  TlsResult shutdown();
  // Queue + flush one alert through the normal entry machinery (async mode
  // may return kWantAsync when the record seal offloads; resume by closing
  // through drain_paused_job). Used by the overload plane to tell the peer
  // *why* a connection is being torn down. Fails when an entry point is
  // paused mid-crypto — the fiber owns the record stream.
  TlsResult send_alert(AlertLevel level, AlertDescription desc);
  // Description of the last alert actually queued to the peer (by
  // send_alert or by an entry point reacting to a fatal parse error).
  std::optional<AlertDescription> last_alert_sent() const {
    return last_alert_sent_;
  }

  bool handshake_complete() const { return hs_state_ == HsState::kDone; }
  bool resumed_session() const { return resumed_; }
  CipherSuite suite() const { return suite_; }
  ProtocolVersion version() const { return version_; }
  const OpCounters& op_counters() const { return ops_; }

  // Client: offer this session for resumption (set before handshake()).
  void offer_session(ClientSession session) {
    if (hs_ != nullptr) hs_->offered_session = std::move(session);
  }
  // Established session for later resumption (valid after handshake).
  const std::optional<ClientSession>& established_session() const {
    return established_session_;
  }

  asyncx::WaitCtx* wait_ctx() { return &wait_ctx_; }
  RecordLayer& record_layer() { return records_; }

  // True once the handshake scratch has been wiped and released (kDone
  // reached with retain_handshake_state off).
  bool handshake_state_released() const { return hs_ == nullptr; }
  // Approximate heap bytes owned by this connection: record-layer buffers,
  // handshake scratch (when still held), session state, entry scratch.
  // Feeds the worker's memory.bytes_per_conn gauge and the million_conn
  // bench's idle-footprint gate.
  size_t heap_footprint() const;

  bool has_paused_job() const { return job_ != nullptr; }
  // Resume a paused async job to completion, discarding its result — used
  // when tearing down a connection whose offload is still in flight. `poll`
  // must make progress on the crypto engine (e.g. QatEngineProvider::poll).
  void drain_paused_job(const std::function<void()>& poll);

 private:
  enum class HsState {
    kStart,
    // server
    kExpectClientHello,
    kExpectClientKeyExchange,
    kExpectClientCcs,
    kExpectClientFinished,
    kExpectClientCcsResumed,
    kExpectClientFinishedResumed,
    kExpectClientFinished13,
    // client
    kExpectServerHello,
    kExpectServerHandshake,       // Certificate..ServerHelloDone
    kExpectServerCcs,
    kExpectServerFinished,
    kExpectServerCcsResumed,
    kExpectServerFinishedResumed,
    kExpectServerFlight13,        // EE..Finished
    kDone,
    kClosed,
    kFailed,
  };

  // Entry-point wrapper: runs `fn` inside a fiber when async mode is on.
  TlsResult run_entry(int (*fn)(TlsConnection*));
  static int handshake_entry(TlsConnection* self);
  static int read_entry(TlsConnection* self);
  static int write_entry(TlsConnection* self);
  static int shutdown_entry(TlsConnection* self);
  static int alert_entry(TlsConnection* self);

  // Best-effort alert emission from inside an entry fiber.
  void queue_alert_inline(AlertLevel level, AlertDescription desc);

  TlsResult handshake_step();      // one state transition
  TlsResult server_step();
  TlsResult client_step();
  TlsResult server_step13(const ClientHello& hello, BytesView psk);
  TlsResult client_process_server_flight13();

  // Message plumbing.
  TlsResult next_handshake_message(HandshakeHeader* out);
  TlsResult next_record(Record* out);
  Status send_handshake(HandshakeType type, BytesView body);
  void transcript_add(BytesView framed);
  Bytes transcript_hash() const;

  // Server sub-steps.
  TlsResult server_on_client_hello(const HandshakeHeader& msg);
  TlsResult server_full_handshake_flight(const ClientHello& hello);
  TlsResult server_resume_flight(const ClientHello& hello,
                                 const SessionState& session);
  TlsResult server_on_client_key_exchange(const HandshakeHeader& msg);
  TlsResult server_on_client_finished(const HandshakeHeader& msg,
                                      bool resumed);
  // Client sub-steps.
  TlsResult client_send_hello();
  TlsResult client_on_server_hello(const HandshakeHeader& msg);
  TlsResult client_on_server_flight(const HandshakeHeader& msg);
  TlsResult client_send_second_flight();
  TlsResult client_on_server_finished(const HandshakeHeader& msg,
                                      bool resumed);

  Status derive_and_install_keys();
  void install_tx_keys();
  void install_rx_keys();
  Result<Bytes> finished_verify(const std::string& label);
  void record_established_session();
  // Wipe + release the handshake scratch and shrink the record layer's
  // handshake high-water buffers. Called at every kDone transition; a no-op
  // under retain_handshake_state.
  void maybe_release_handshake_state();

  TlsContext* ctx_;
  // Credential snapshot captured at construction (DESIGN.md §15): a hot
  // reload swaps the context's snapshot for new connections, while this
  // connection keeps handshaking against the chain it started with.
  std::shared_ptr<const ServerCredentials> creds_;
  RecordLayer records_;
  asyncx::WaitCtx wait_ctx_;
  asyncx::AsyncJob* job_ = nullptr;

  HsState hs_state_ = HsState::kStart;
  ProtocolVersion version_ = ProtocolVersion::kTls12;
  CipherSuite suite_ = CipherSuite::kTlsRsaWithAes128CbcSha;
  bool resumed_ = false;

  // Handshake-phase state: slab slot (or heap) released at established.
  // Post-established code paths must not touch hs_ — only the fields below
  // survive to the idle steady state.
  common::SlabPool<HandshakeScratch>* scratch_pool_;
  HandshakeScratch* hs_;

  std::optional<ClientSession> established_session_;
  Bytes resumption_master13_;  // "res master" of the completed handshake

  // Entry-point scratch: parameters of the in-flight read()/write() call so
  // the fiber can be resumed by re-invoking the same entry point.
  Bytes* read_out_ = nullptr;
  Bytes write_data_;
  AlertLevel alert_level_ = AlertLevel::kFatal;
  AlertDescription alert_desc_ = AlertDescription::kInternalError;

  // Alert chosen by a parse path for the entry wrapper to emit on failure,
  // and the last alert actually queued to the peer.
  std::optional<AlertDescription> pending_alert_;
  std::optional<AlertDescription> last_alert_sent_;

  OpCounters ops_;
};

}  // namespace qtls::tls
