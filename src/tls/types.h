// Shared TLS protocol types. The wire format is TLS-shaped (record framing,
// handshake message framing, cipher-suite ids) but both ends are this stack;
// see DESIGN.md §6 for the declared divergences (no X.509, CBC-HMAC record
// protection also used for the TLS 1.3 experiments).
#pragma once

#include <cstdint>
#include <string>

#include "crypto/ec.h"
#include "crypto/hash.h"

namespace qtls::tls {

enum class ContentType : uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

enum class HandshakeType : uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kNewSessionTicket = 4,
  kEncryptedExtensions = 8,  // TLS 1.3
  kCertificate = 11,
  kServerKeyExchange = 12,
  kCertificateVerify = 15,   // TLS 1.3
  kServerHelloDone = 14,
  kClientKeyExchange = 16,
  kFinished = 20,
};

enum class ProtocolVersion : uint16_t {
  kTls12 = 0x0303,
  kTls13 = 0x0304,
};

// Cipher suites the paper evaluates. Values follow the IANA registry for
// the TLS 1.2 suites; the TLS 1.3 entry uses the RFC 8446 AES128-GCM-SHA256
// codepoint even though our record protection stays CBC-HMAC (divergence 5).
enum class CipherSuite : uint16_t {
  kTlsRsaWithAes128CbcSha = 0x002F,        // "TLS-RSA"
  kEcdheRsaWithAes128CbcSha = 0xC013,      // "ECDHE-RSA"
  kEcdheEcdsaWithAes128CbcSha = 0xC009,    // "ECDHE-ECDSA"
  kTls13Aes128Sha256 = 0x1301,             // TLS 1.3 (ECDHE-RSA)
};

enum class KeyExchange : uint8_t { kRsa, kEcdheRsa, kEcdheEcdsa };

struct CipherSuiteInfo {
  CipherSuite id;
  const char* name;
  KeyExchange kx;
  HashAlg prf_hash;       // PRF / transcript hash
  HashAlg mac_alg;        // record MAC
  size_t enc_key_len;     // AES key bytes
  size_t mac_key_len;
  bool tls13;
};

const CipherSuiteInfo& cipher_suite_info(CipherSuite suite);

// Result codes surfaced by TlsConnection — the reproduction of OpenSSL's
// SSL_get_error values the paper's Nginx patches dispatch on (§4.2):
// kWantAsync is the new SSL_ERROR_WANT_ASYNC.
enum class TlsResult : uint8_t {
  kOk = 0,
  kWantRead,    // need more transport bytes
  kWantWrite,   // transport backpressure
  kWantAsync,   // async crypto in flight: reschedule the SAME handler later
  kClosed,      // clean shutdown from the peer
  kError,
};

const char* tls_result_name(TlsResult r);

// Alert plane (RFC 5246 §7.2 / RFC 8446 §6). Only the descriptions this
// stack actually emits; the overload plane (DESIGN.md §10) picks them when
// tearing a connection down so the peer learns *why*.
enum class AlertLevel : uint8_t { kWarning = 1, kFatal = 2 };

enum class AlertDescription : uint8_t {
  kCloseNotify = 0,
  kUnexpectedMessage = 10,
  kBadRecordMac = 20,
  kRecordOverflow = 22,
  kDecodeError = 50,
  kInternalError = 80,
  kUserCanceled = 90,
};

const char* alert_description_name(AlertDescription d);

constexpr size_t kMaxPlaintextFragment = 16 * 1024;  // RFC fragment limit
// Handshake-message reassembly cap: bounds hs_buffer_ growth against hostile
// claimed lengths. Generous for this stack (largest real message is a
// Certificate, well under 16 KB) yet small enough to starve a buffer bomb.
constexpr size_t kMaxHandshakeMessage = 64 * 1024;
constexpr size_t kRandomSize = 32;
constexpr size_t kMasterSecretSize = 48;
constexpr size_t kVerifyDataSize = 12;
constexpr size_t kSessionIdSize = 32;

}  // namespace qtls::tls
