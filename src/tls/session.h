// Session resumption state (paper §2.1, §5.3): both mechanisms —
//  * session-ID cache: server-side map id -> {master secret, suite}
//  * session tickets: self-contained state sealed under a server ticket key,
//    so resumption needs no server-side store.
// Lifetimes are enforced (the paper notes providers restrict ticket
// lifetimes, generally under an hour, to bound the forward-secrecy loss).
// The lifetime is measured from when the session state was FIRST
// established: re-sealing a ticket on resumption must carry the original
// created_at_ms forward, so a chatty client cannot keep one master secret
// alive indefinitely by resuming just before every expiry.
//
// These are the single-threaded building blocks; the process-wide sharded
// cache and rotating key ring that multiple workers share live in
// tls/session_plane.h and are built out of them.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/kdf.h"
#include "tls/types.h"

namespace qtls::tls {

struct SessionState {
  CipherSuite suite = CipherSuite::kTlsRsaWithAes128CbcSha;
  Bytes master_secret;
  uint64_t created_at_ms = 0;
};

// LRU session-ID cache with TTL. Single-threaded by design: one cache per
// shard (tls/session_plane.h), each shard guarded by its own mutex.
// Expiry clamps clock skew: an entry dated in the future (virtual-time
// restart, cross-worker skew) has age 0, it is never treated as expired by
// unsigned underflow. Eviction prefers expired entries over the LRU tail.
class SessionCache {
 public:
  explicit SessionCache(size_t capacity = 10'000,
                        uint64_t lifetime_ms = 3'600'000)
      : capacity_(capacity), lifetime_ms_(lifetime_ms) {}

  void put(const Bytes& session_id, SessionState state, uint64_t now_ms);
  std::optional<SessionState> get(const Bytes& session_id, uint64_t now_ms);
  void remove(const Bytes& session_id);
  size_t size() const { return map_.size(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  // Counter taxonomy (the conservation invariant depends on it):
  //   inserts     — puts that created a NEW entry (replacement is not one)
  //   evictions   — a LIVE entry displaced by capacity pressure
  //   expirations — an entry removed because its TTL lapsed, whether the
  //                 expired-first probe reclaimed it on the insert path or
  //                 get() tripped over it
  //   removes     — explicit remove() of a present key
  // Invariant: inserts == size + evictions + expirations + removes.
  uint64_t inserts() const { return inserts_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t expirations() const { return expirations_; }
  uint64_t removes() const { return removes_; }

 private:
  struct Entry {
    SessionState state;
    std::list<std::string>::iterator lru_it;
  };

  bool expired(const SessionState& state, uint64_t now_ms) const {
    // Future-dated entries clamp to age 0 rather than underflowing.
    return now_ms >= state.created_at_ms &&
           now_ms - state.created_at_ms > lifetime_ms_;
  }
  void evict_one(uint64_t now_ms);

  size_t capacity_;
  uint64_t lifetime_ms_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t inserts_ = 0;
  uint64_t evictions_ = 0;
  uint64_t expirations_ = 0;
  uint64_t removes_ = 0;
};

// Session tickets: seal/unseal SessionState under a ticket key (AES-128-CBC
// + HMAC-SHA256, like the RFC 5077 recommended construction). One keeper is
// one key; the epoch-rotating ring (tls/session_plane.h) owns several.
class TicketKeeper {
 public:
  explicit TicketKeeper(BytesView key_seed, uint64_t lifetime_ms = 3'600'000);

  // Seals with created_at = state.created_at_ms when set (ticket refresh on
  // resumption keeps the original establishment time), else now_ms.
  Bytes seal(const SessionState& state, uint64_t now_ms, HmacDrbg& iv_rng) const;
  // Fails on tamper or expiry (age clamps to 0 for future-dated tickets).
  Result<SessionState> unseal(BytesView ticket, uint64_t now_ms) const;

  uint64_t lifetime_ms() const { return lifetime_ms_; }

 private:
  Bytes enc_key_;
  Bytes mac_key_;
  uint64_t lifetime_ms_;
};

}  // namespace qtls::tls
