// Session resumption state (paper §2.1, §5.3): both mechanisms —
//  * session-ID cache: server-side map id -> {master secret, suite}
//  * session tickets: self-contained state sealed under a server ticket key,
//    so resumption needs no server-side store.
// Lifetimes are enforced (the paper notes providers restrict ticket
// lifetimes, generally under an hour, to bound the forward-secrecy loss).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/kdf.h"
#include "tls/types.h"

namespace qtls::tls {

struct SessionState {
  CipherSuite suite = CipherSuite::kTlsRsaWithAes128CbcSha;
  Bytes master_secret;
  uint64_t created_at_ms = 0;
};

// LRU session-ID cache with TTL. Single-threaded by design: one cache per
// worker process, like Nginx's per-worker session cache default.
class SessionCache {
 public:
  explicit SessionCache(size_t capacity = 10'000,
                        uint64_t lifetime_ms = 3'600'000)
      : capacity_(capacity), lifetime_ms_(lifetime_ms) {}

  void put(const Bytes& session_id, SessionState state, uint64_t now_ms);
  std::optional<SessionState> get(const Bytes& session_id, uint64_t now_ms);
  void remove(const Bytes& session_id);
  size_t size() const { return map_.size(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    SessionState state;
    std::list<std::string>::iterator lru_it;
  };

  size_t capacity_;
  uint64_t lifetime_ms_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// Session tickets: seal/unseal SessionState under a ticket key (AES-128-CBC
// + HMAC-SHA256, like the RFC 5077 recommended construction).
class TicketKeeper {
 public:
  explicit TicketKeeper(BytesView key_seed, uint64_t lifetime_ms = 3'600'000);

  Bytes seal(const SessionState& state, uint64_t now_ms, HmacDrbg& iv_rng) const;
  // Fails on tamper or expiry.
  Result<SessionState> unseal(BytesView ticket, uint64_t now_ms) const;

 private:
  Bytes enc_key_;
  Bytes mac_key_;
  uint64_t lifetime_ms_;
};

}  // namespace qtls::tls
