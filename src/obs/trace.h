// Request lifecycle tracing for the offload pipeline (DESIGN.md §8).
//
// Every CryptoRequest/CryptoResponse carries a TraceStamps — a fixed 8-slot
// nanosecond timestamp array stamped at the pipeline's stage boundaries:
//
//   submit -> ring-enqueue -> engine-claim -> service-start -> service-done
//          -> poll-drain -> fiber-resume
//
// The real-time backend stamps with the steady clock; the virtual-time
// backend (src/sim) stamps with the DES clock, which makes its stage deltas
// exactly predictable from sim/costs.h (tests/trace_sim_test.cc is the
// oracle). record_pipeline() folds a completed request's stamps into the
// per-stage histograms of the global MetricsRegistry and appends a raw
// TraceRecord to a bounded in-memory ring.
//
// Sampling: stamping costs ~7 clock reads per request (~175ns), which would
// be ~36% of a batched 0.48us/op device RTT if taken on every request. The
// sampling decision is therefore made once, at trace_begin() (period
// 1-in-64 by default, power-of-two); unsampled requests carry
// sampled=false and every later stamp is a single predictable branch.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace qtls::obs {

// Stage slots. kSpare is reserved so the array stays 8 wide (one cache line
// including the sampled flag).
enum class Stage : uint8_t {
  kSubmit = 0,
  kRingEnqueue,
  kEngineClaim,
  kServiceStart,
  kServiceDone,
  kPollDrain,
  kFiberResume,
  kSpare,
};
constexpr size_t kNumStages = 8;

const char* stage_name(Stage s);

// Layout is identical in both build modes (the struct is embedded in
// CryptoRequest/CryptoResponse, which mixed-mode TUs share); with
// QTLS_OBS=OFF trace_begin() is a no-op, sampled stays false, and stamping
// is dead code.
struct TraceStamps {
  uint64_t ts[kNumStages] = {};
  bool sampled = false;

  void stamp_at(Stage s, uint64_t nanos) {
    if (sampled) ts[static_cast<size_t>(s)] = nanos;
  }
  uint64_t operator[](Stage s) const { return ts[static_cast<size_t>(s)]; }
};

// One completed sampled request, as kept in the bounded trace ring.
struct TraceRecord {
  uint64_t request_id = 0;
  uint8_t op_class = 0;  // index into {"asym", "cipher", "prf"}
  bool sim = false;
  uint64_t ts[kNumStages] = {};
};

constexpr size_t kTraceRingCapacity = 1024;

#if QTLS_OBS_ENABLED

inline namespace obs_enabled {

uint64_t trace_now_nanos();  // steady clock, ns

// Sampling period: 1-in-N requests carry stamps. Rounded up to a power of
// two; 0 disables tracing entirely, 1 samples every request (tests).
void set_trace_sample_period(uint64_t period);
uint64_t trace_sample_period();

// Make the sampling decision and stamp kSubmit. The real-time overload
// reads the steady clock; the _at overload takes the caller's (virtual)
// clock.
void trace_begin(TraceStamps& t);
void trace_begin_at(TraceStamps& t, uint64_t now_nanos);

inline void stamp_now(TraceStamps& t, Stage s) {
  if (t.sampled) t.ts[static_cast<size_t>(s)] = trace_now_nanos();
}

// Fold one completed request into the global registry's per-stage
// histograms ("qat.stage.*" real plane, "sim.qat.stage.*" virtual plane;
// per-class "…op.<class>.total_ns" histograms and completion counters) and
// push a raw TraceRecord onto the bounded ring. No-op when !t.sampled.
void record_pipeline(const TraceStamps& t, uint64_t request_id,
                     int op_class_idx, bool sim);

// Bounded ring of raw records (overwrites oldest when full).
std::vector<TraceRecord> trace_ring_snapshot();
void trace_ring_clear();

}  // inline namespace obs_enabled

#else  // !QTLS_OBS_ENABLED

inline namespace obs_disabled {

inline uint64_t trace_now_nanos() { return 0; }
inline void set_trace_sample_period(uint64_t) {}
inline uint64_t trace_sample_period() { return 0; }
inline void trace_begin(TraceStamps&) {}
inline void trace_begin_at(TraceStamps&, uint64_t) {}
inline void stamp_now(TraceStamps&, Stage) {}
inline void record_pipeline(const TraceStamps&, uint64_t, int, bool) {}
inline std::vector<TraceRecord> trace_ring_snapshot() { return {}; }
inline void trace_ring_clear() {}

}  // inline namespace obs_disabled

#endif  // QTLS_OBS_ENABLED

}  // namespace qtls::obs
