#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/spsc_ring.h"  // kCacheLine

#if QTLS_OBS_ENABLED
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#endif

namespace qtls::obs {

// ---------------------------------------------------------------------------
// Snapshot types (both build modes)
// ---------------------------------------------------------------------------

uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

const LatencyHistogram* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h.hist;
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    os << (i ? "," : "") << '"' << counters[i].first << "\":"
       << counters[i].second;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? "," : "") << '"' << gauges[i].first << "\":"
       << gauges[i].second;
  }
  os << "},\"histograms\":{";
  bool first = true;
  for (const auto& h : histograms) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%" PRIu64 ",\"mean_ns\":%.1f,"
                  "\"p50_ns\":%" PRIu64 ",\"p90_ns\":%" PRIu64
                  ",\"p99_ns\":%" PRIu64 ",\"max_ns\":%" PRIu64 "}",
                  h.name.c_str(), h.hist.count(), h.hist.mean_nanos(),
                  h.hist.percentile_nanos(50), h.hist.percentile_nanos(90),
                  h.hist.percentile_nanos(99), h.hist.max_nanos());
    os << (first ? "" : ",") << buf;
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [n, v] : counters) os << n << " = " << v << '\n';
  for (const auto& [n, v] : gauges) os << n << " = " << v << '\n';
  for (const auto& h : histograms) {
    if (h.hist.count() == 0) continue;
    os << h.name << ": " << h.hist.summary() << '\n';
  }
  return os.str();
}

#if QTLS_OBS_ENABLED

inline namespace obs_enabled {

namespace {

// Epoch source: a destroyed registry's address may be reused; the epoch in
// the thread-local shard cache disambiguates incarnations.
std::atomic<uint64_t> g_registry_epoch{1};

// One histogram's cells inside one shard. Single writer (the owning
// thread); relaxed atomics publish to the snapshot reader.
struct HistCells {
  std::atomic<uint64_t> buckets[LatencyHistogram::kNumBuckets] = {};
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> max{0};

  void record(uint64_t nanos) {
    size_t idx = LatencyHistogram::bucket_index(nanos);
    if (idx >= LatencyHistogram::kNumBuckets)
      idx = LatencyHistogram::kNumBuckets - 1;
    buckets[idx].store(buckets[idx].load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    count.store(count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    sum.store(sum.load(std::memory_order_relaxed) + nanos,
              std::memory_order_relaxed);
    if (nanos > max.load(std::memory_order_relaxed))
      max.store(nanos, std::memory_order_relaxed);
  }

  void zero() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    max.store(0, std::memory_order_relaxed);
  }
};

}  // namespace

// One thread's cells. Counter/gauge arrays are pre-sized to the registry
// caps; histogram cells hang off atomic pointers filled in at registration
// (for existing shards) or shard creation (for already-registered
// histograms), always under the registry mutex.
struct alignas(kCacheLine) MetricsRegistry::Shard {
  std::atomic<uint64_t> counters[kMaxCounters] = {};
  std::atomic<int64_t> gauges[kMaxGauges] = {};
  std::atomic<HistCells*> hists[kMaxHistograms] = {};

  ~Shard() {
    for (auto& h : hists) delete h.load(std::memory_order_relaxed);
  }
};

struct MetricsRegistry::State {
  mutable std::mutex mu;
  std::vector<std::string> counter_names, gauge_names, hist_names;
  std::map<std::string, uint32_t, std::less<>> counter_ids, gauge_ids,
      hist_ids;
  std::vector<std::unique_ptr<Shard>> shards;
  std::map<std::thread::id, Shard*> shard_by_thread;
};

MetricsRegistry::MetricsRegistry()
    : state_(new State),
      epoch_(g_registry_epoch.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() { delete state_; }

MetricsRegistry& MetricsRegistry::global() {
  // Leaked: instrumented threads (QAT engines, workers) may record during
  // static destruction; the registry must outlive them all.
  static auto* registry = new MetricsRegistry;
  return *registry;
}

namespace {
template <typename Map, typename Names>
uint32_t intern(Map& ids, Names& names, std::string_view name, size_t cap) {
  auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  if (names.size() >= cap) return static_cast<uint32_t>(cap - 1);  // clamp
  const auto id = static_cast<uint32_t>(names.size());
  names.emplace_back(name);
  ids.emplace(std::string(name), id);
  return id;
}
}  // namespace

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(state_->mu);
  return Counter(this, intern(state_->counter_ids, state_->counter_names,
                              name, kMaxCounters));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(state_->mu);
  return Gauge(this,
               intern(state_->gauge_ids, state_->gauge_names, name,
                      kMaxGauges));
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->hist_ids.find(name);
  if (it != state_->hist_ids.end()) return Histogram(this, it->second);
  const uint32_t id = intern(state_->hist_ids, state_->hist_names, name,
                             kMaxHistograms);
  // Give every existing shard cells for the new histogram before any handle
  // escapes; shards created later get cells for all registered histograms.
  for (auto& shard : state_->shards) {
    if (!shard->hists[id].load(std::memory_order_relaxed))
      shard->hists[id].store(new HistCells, std::memory_order_release);
  }
  return Histogram(this, id);
}

size_t MetricsRegistry::num_counters() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->counter_names.size();
}
size_t MetricsRegistry::num_gauges() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->gauge_names.size();
}
size_t MetricsRegistry::num_histograms() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->hist_names.size();
}
size_t MetricsRegistry::num_shards() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->shards.size();
}

MetricsRegistry::Shard* MetricsRegistry::register_thread() {
  std::lock_guard<std::mutex> lock(state_->mu);
  const auto tid = std::this_thread::get_id();
  auto it = state_->shard_by_thread.find(tid);
  if (it != state_->shard_by_thread.end()) return it->second;
  auto shard = std::make_unique<Shard>();
  for (size_t i = 0; i < state_->hist_names.size(); ++i)
    shard->hists[i].store(new HistCells, std::memory_order_release);
  Shard* raw = shard.get();
  state_->shards.push_back(std::move(shard));
  state_->shard_by_thread.emplace(tid, raw);
  return raw;
}

MetricsRegistry::Shard* MetricsRegistry::local_shard() {
  struct CacheEntry {
    const MetricsRegistry* reg = nullptr;
    uint64_t epoch = 0;
    Shard* shard = nullptr;
  };
  // Small per-thread cache: hot lookups are a pointer+epoch compare; a miss
  // (new thread, evicted entry, or a registry recreated at the same
  // address) falls back to the mutexed map.
  thread_local CacheEntry cache[4];
  thread_local size_t evict = 0;
  for (const auto& e : cache)
    if (e.reg == this && e.epoch == epoch_) return e.shard;
  Shard* shard = register_thread();
  cache[evict] = CacheEntry{this, epoch_, shard};
  evict = (evict + 1) % (sizeof(cache) / sizeof(cache[0]));
  return shard;
}

void MetricsRegistry::counter_add(uint32_t id, uint64_t n) {
  auto& cell = local_shard()->counters[id];
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(uint32_t id, int64_t v) {
  local_shard()->gauges[id].store(v, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_add(uint32_t id, int64_t delta) {
  auto& cell = local_shard()->gauges[id];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void MetricsRegistry::histogram_record(uint32_t id, uint64_t nanos) {
  HistCells* cells =
      local_shard()->hists[id].load(std::memory_order_acquire);
  if (cells) cells->record(nanos);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  MetricsSnapshot out;
  out.counters.reserve(state_->counter_names.size());
  for (size_t i = 0; i < state_->counter_names.size(); ++i) {
    uint64_t total = 0;
    for (const auto& shard : state_->shards)
      total += shard->counters[i].load(std::memory_order_relaxed);
    out.counters.emplace_back(state_->counter_names[i], total);
  }
  out.gauges.reserve(state_->gauge_names.size());
  for (size_t i = 0; i < state_->gauge_names.size(); ++i) {
    int64_t total = 0;
    for (const auto& shard : state_->shards)
      total += shard->gauges[i].load(std::memory_order_relaxed);
    out.gauges.emplace_back(state_->gauge_names[i], total);
  }
  out.histograms.reserve(state_->hist_names.size());
  for (size_t i = 0; i < state_->hist_names.size(); ++i) {
    HistogramSnapshot hs;
    hs.name = state_->hist_names[i];
    for (const auto& shard : state_->shards) {
      const HistCells* cells =
          shard->hists[i].load(std::memory_order_acquire);
      if (!cells) continue;
      uint64_t counts[LatencyHistogram::kNumBuckets];
      for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b)
        counts[b] = cells->buckets[b].load(std::memory_order_relaxed);
      hs.hist.merge_counts(counts, LatencyHistogram::kNumBuckets,
                           cells->count.load(std::memory_order_relaxed),
                           cells->sum.load(std::memory_order_relaxed),
                           cells->max.load(std::memory_order_relaxed));
    }
    out.histograms.push_back(std::move(hs));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(state_->mu);
  for (auto& shard : state_->shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : shard->gauges) g.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      if (HistCells* cells = h.load(std::memory_order_relaxed)) cells->zero();
    }
  }
}

}  // inline namespace obs_enabled

#endif  // QTLS_OBS_ENABLED

}  // namespace qtls::obs
