// Runtime metrics registry for the offload pipeline (DESIGN.md §8).
//
// The bench harness stats (common/stats.h) are offline accumulators owned by
// one thread; this registry is the always-on plane: counters, gauges and
// latency histograms keyed by interned string labels, recordable from any
// thread with relaxed-atomic cost and no heap allocation on the record path.
//
// Design:
//  * Interning — a metric name is resolved once (mutex, map lookup) to a
//    small integer id carried inside the returned handle. Hot paths never
//    touch strings.
//  * Shard-and-merge — each recording thread owns a Shard (created on its
//    first record; the only allocation the record path can ever trigger).
//    A shard is single-writer: increments are relaxed load+store pairs, not
//    lock-prefixed RMWs. snapshot() takes the registration mutex (so the
//    shard list is stable) and sums the relaxed-published cells; writers
//    are never blocked. Tolerates snapshot-while-writing by construction.
//  * Fixed capacity — shards pre-size their cell arrays to kMaxCounters /
//    kMaxGauges / kMaxHistograms so registration never reallocates storage
//    a concurrent recorder might be touching. Histogram cells (16 KB per
//    histogram per shard) are allocated at registration / shard creation,
//    behind the same mutex.
//  * Compile-out — building with -DQTLS_OBS=OFF (QTLS_OBS_ENABLED=0) turns
//    every handle into an inline no-op and the registry into an empty stub;
//    call sites compile away entirely. The enabled and disabled definitions
//    live in distinct inline namespaces so a disabled translation unit can
//    coexist with an enabled library without ODR collisions (the
//    compiled-out regression test relies on this).
//
// Aggregation semantics: counters and histograms sum across shards; gauges
// also sum across shards (a per-thread gauge set() is that thread's
// contribution — use one writer thread per gauge for absolute values).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

#ifndef QTLS_OBS_ENABLED
#define QTLS_OBS_ENABLED 1
#endif

namespace qtls::obs {

// ---------------------------------------------------------------------------
// Snapshot types — shared verbatim by both build modes (defined in
// metrics.cc unconditionally, so mixed-mode programs agree on the layout).
// ---------------------------------------------------------------------------

struct HistogramSnapshot {
  std::string name;
  LatencyHistogram hist;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  // 0 / nullptr when the name is absent.
  uint64_t counter_value(std::string_view name) const;
  const LatencyHistogram* histogram(std::string_view name) const;

  std::string to_json() const;  // one object: {"counters":{...},...}
  std::string to_text() const;  // human-readable, one metric per line
};

#if QTLS_OBS_ENABLED

inline namespace obs_enabled {

class MetricsRegistry;

// Handles are small value types (registry pointer + interned id); copying
// them is free and they stay valid for the registry's lifetime.
class Counter {
 public:
  Counter() = default;
  inline void add(uint64_t n = 1);
  inline void inc() { add(1); }
  uint32_t id() const { return id_; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  uint32_t id_ = 0;
};

class Gauge {
 public:
  Gauge() = default;
  inline void set(int64_t v);
  inline void add(int64_t delta);
  uint32_t id() const { return id_; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  uint32_t id_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  inline void record(uint64_t nanos);
  uint32_t id() const { return id_; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  uint32_t id_ = 0;
};

class MetricsRegistry {
 public:
  // Fixed shard capacity: registration beyond a cap is clamped to the last
  // id (metrics alias rather than corrupt memory) and logged once.
  static constexpr size_t kMaxCounters = 256;
  static constexpr size_t kMaxGauges = 64;
  static constexpr size_t kMaxHistograms = 64;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry& global();

  // Interning registration: the first call for a name assigns an id; later
  // calls (any thread) return a handle with the same id. Cold path (mutex).
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  // Registered-metric counts (interning observability).
  size_t num_counters() const;
  size_t num_gauges() const;
  size_t num_histograms() const;
  size_t num_shards() const;

  // Merge every shard into one consistent-enough view. Safe to call while
  // other threads record (relaxed reads; a racing increment may or may not
  // be included, never torn).
  MetricsSnapshot snapshot() const;

  // Zero every cell (between measurement phases; not exact when writers
  // race — a concurrent increment can survive the sweep).
  void reset();

  // --- record paths (called via the handles) ---------------------------
  void counter_add(uint32_t id, uint64_t n);
  void gauge_set(uint32_t id, int64_t v);
  void gauge_add(uint32_t id, int64_t delta);
  void histogram_record(uint32_t id, uint64_t nanos);

 private:
  struct Shard;
  struct State;

  Shard* local_shard();
  Shard* register_thread();

  State* state_;
  uint64_t epoch_;  // unique per registry instance; validates TLS caches
};

inline void Counter::add(uint64_t n) {
  if (reg_) reg_->counter_add(id_, n);
}
inline void Gauge::set(int64_t v) {
  if (reg_) reg_->gauge_set(id_, v);
}
inline void Gauge::add(int64_t delta) {
  if (reg_) reg_->gauge_add(id_, delta);
}
inline void Histogram::record(uint64_t nanos) {
  if (reg_) reg_->histogram_record(id_, nanos);
}

}  // inline namespace obs_enabled

#else  // !QTLS_OBS_ENABLED — header-only no-op mirror of the API above.

inline namespace obs_disabled {

class Counter {
 public:
  void add(uint64_t = 1) {}
  void inc() {}
  uint32_t id() const { return 0; }
};

class Gauge {
 public:
  void set(int64_t) {}
  void add(int64_t) {}
  uint32_t id() const { return 0; }
};

class Histogram {
 public:
  void record(uint64_t) {}
  uint32_t id() const { return 0; }
};

class MetricsRegistry {
 public:
  static constexpr size_t kMaxCounters = 256;
  static constexpr size_t kMaxGauges = 64;
  static constexpr size_t kMaxHistograms = 64;

  static MetricsRegistry& global() {
    static MetricsRegistry registry;
    return registry;
  }

  Counter counter(std::string_view) { return {}; }
  Gauge gauge(std::string_view) { return {}; }
  Histogram histogram(std::string_view) { return {}; }

  size_t num_counters() const { return 0; }
  size_t num_gauges() const { return 0; }
  size_t num_histograms() const { return 0; }
  size_t num_shards() const { return 0; }

  MetricsSnapshot snapshot() const { return {}; }
  void reset() {}
};

}  // inline namespace obs_disabled

#endif  // QTLS_OBS_ENABLED

}  // namespace qtls::obs
