#include "obs/trace.h"

#if QTLS_OBS_ENABLED
#include <atomic>
#include <chrono>
#include <mutex>
#endif

namespace qtls::obs {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kSubmit: return "submit";
    case Stage::kRingEnqueue: return "ring_enqueue";
    case Stage::kEngineClaim: return "engine_claim";
    case Stage::kServiceStart: return "service_start";
    case Stage::kServiceDone: return "service_done";
    case Stage::kPollDrain: return "poll_drain";
    case Stage::kFiberResume: return "fiber_resume";
    case Stage::kSpare: return "spare";
  }
  return "?";
}

#if QTLS_OBS_ENABLED

inline namespace obs_enabled {

namespace {

constexpr const char* kOpClassNames[3] = {"asym", "cipher", "prf"};

// Sampling state: a global power-of-two mask plus a per-thread counter, so
// the decision is one TLS increment and an AND — no shared-cacheline
// traffic on the submit path.
std::atomic<uint64_t> g_sample_mask{63};   // period 64
std::atomic<bool> g_trace_enabled{true};

bool sample_this_request() {
  if (!g_trace_enabled.load(std::memory_order_relaxed)) return false;
  thread_local uint64_t counter = 0;
  return (counter++ & g_sample_mask.load(std::memory_order_relaxed)) == 0;
}

// Per-stage histogram handles for one plane (real or sim), interned once.
struct PlaneHists {
  Histogram queue, service, drain, resume, total;
  Histogram cls_total[3];
  Counter cls_completed[3];

  explicit PlaneHists(const char* prefix) {
    auto& reg = MetricsRegistry::global();
    std::string p(prefix);
    queue = reg.histogram(p + ".stage.queue");
    service = reg.histogram(p + ".stage.service");
    drain = reg.histogram(p + ".stage.drain");
    resume = reg.histogram(p + ".stage.resume");
    total = reg.histogram(p + ".stage.total");
    for (int c = 0; c < 3; ++c) {
      cls_total[c] =
          reg.histogram(p + ".op." + kOpClassNames[c] + ".total_ns");
      cls_completed[c] =
          reg.counter(p + ".op." + std::string(kOpClassNames[c]) +
                      ".completed");
    }
  }
};

PlaneHists& plane_hists(bool sim) {
  static PlaneHists real("qat");
  static PlaneHists virt("sim.qat");
  return sim ? virt : real;
}

uint64_t delta(const TraceStamps& t, Stage from, Stage to) {
  const uint64_t a = t[from];
  const uint64_t b = t[to];
  if (a == 0 || b == 0 || b < a) return 0;
  return b - a;
}

// Bounded ring of raw records. Only sampled requests reach here, so a
// mutex is fine; the storage is a fixed array (no allocation per push).
struct TraceRing {
  std::mutex mu;
  TraceRecord records[kTraceRingCapacity];
  size_t next = 0;
  size_t size = 0;
};

TraceRing& trace_ring() {
  static auto* ring = new TraceRing;  // leaked, same lifetime rules as the
  return *ring;                       // global registry
}

}  // namespace

uint64_t trace_now_nanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_trace_sample_period(uint64_t period) {
  if (period == 0) {
    g_trace_enabled.store(false, std::memory_order_relaxed);
    return;
  }
  uint64_t pow2 = 1;
  while (pow2 < period && pow2 < (1ULL << 62)) pow2 <<= 1;
  g_sample_mask.store(pow2 - 1, std::memory_order_relaxed);
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

uint64_t trace_sample_period() {
  if (!g_trace_enabled.load(std::memory_order_relaxed)) return 0;
  return g_sample_mask.load(std::memory_order_relaxed) + 1;
}

void trace_begin(TraceStamps& t) {
  t.sampled = sample_this_request();
  if (t.sampled)
    t.ts[static_cast<size_t>(Stage::kSubmit)] = trace_now_nanos();
}

void trace_begin_at(TraceStamps& t, uint64_t now_nanos) {
  t.sampled = sample_this_request();
  if (t.sampled) t.ts[static_cast<size_t>(Stage::kSubmit)] = now_nanos;
}

void record_pipeline(const TraceStamps& t, uint64_t request_id,
                     int op_class_idx, bool sim) {
  if (!t.sampled) return;
  if (op_class_idx < 0 || op_class_idx >= 3) op_class_idx = 2;
  PlaneHists& h = plane_hists(sim);

  h.queue.record(delta(t, Stage::kRingEnqueue, Stage::kEngineClaim));
  h.service.record(delta(t, Stage::kServiceStart, Stage::kServiceDone));
  h.drain.record(delta(t, Stage::kServiceDone, Stage::kPollDrain));
  if (t[Stage::kFiberResume] != 0)
    h.resume.record(delta(t, Stage::kPollDrain, Stage::kFiberResume));

  // Total: submit to the last stamped stage (fiber-resume through the
  // engine; poll-drain for raw device users).
  const Stage last = t[Stage::kFiberResume] != 0 ? Stage::kFiberResume
                                                 : Stage::kPollDrain;
  const uint64_t total = delta(t, Stage::kSubmit, last);
  h.total.record(total);
  h.cls_total[op_class_idx].record(total);
  h.cls_completed[op_class_idx].inc();

  TraceRing& ring = trace_ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  TraceRecord& rec = ring.records[ring.next];
  rec.request_id = request_id;
  rec.op_class = static_cast<uint8_t>(op_class_idx);
  rec.sim = sim;
  for (size_t i = 0; i < kNumStages; ++i) rec.ts[i] = t.ts[i];
  ring.next = (ring.next + 1) % kTraceRingCapacity;
  if (ring.size < kTraceRingCapacity) ++ring.size;
}

std::vector<TraceRecord> trace_ring_snapshot() {
  TraceRing& ring = trace_ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  std::vector<TraceRecord> out;
  out.reserve(ring.size);
  // Oldest first.
  const size_t start =
      ring.size < kTraceRingCapacity ? 0 : ring.next;
  for (size_t i = 0; i < ring.size; ++i)
    out.push_back(ring.records[(start + i) % kTraceRingCapacity]);
  return out;
}

void trace_ring_clear() {
  TraceRing& ring = trace_ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.next = 0;
  ring.size = 0;
}

}  // inline namespace obs_enabled

#endif  // QTLS_OBS_ENABLED

}  // namespace qtls::obs
