#include "net/memory_transport.h"

#include <algorithm>

namespace qtls::net {

MemoryPipe::MemoryPipe()
    : a_(new MemoryEndpoint(this, 0)), b_(new MemoryEndpoint(this, 1)) {}

void MemoryPipe::close_side(int side) { closed_[side] = true; }

tls::IoResult MemoryEndpoint::read(uint8_t* buf, size_t len) {
  // Endpoint `side` reads from the queue written by the peer.
  auto& queue = pipe_->dir_[1 - side_];
  if (queue.empty()) {
    if (pipe_->closed_[1 - side_]) return {tls::IoStatus::kClosed, 0};
    return {tls::IoStatus::kWouldBlock, 0};
  }
  size_t take = std::min(len, queue.size());
  if (pipe_->chunk_limit_ > 0) take = std::min(take, pipe_->chunk_limit_);
  for (size_t i = 0; i < take; ++i) {
    buf[i] = queue.front();
    queue.pop_front();
  }
  return {tls::IoStatus::kOk, take};
}

tls::IoResult MemoryEndpoint::write(const uint8_t* buf, size_t len) {
  if (pipe_->closed_[side_]) return {tls::IoStatus::kError, 0};
  auto& queue = pipe_->dir_[side_];
  size_t take = len;
  if (pipe_->capacity_ > 0) {
    if (queue.size() >= pipe_->capacity_)
      return {tls::IoStatus::kWouldBlock, 0};
    take = std::min(take, pipe_->capacity_ - queue.size());
  }
  if (pipe_->chunk_limit_ > 0) take = std::min(take, pipe_->chunk_limit_);
  queue.insert(queue.end(), buf, buf + take);
  pipe_->bytes_transferred_ += take;
  return {tls::IoStatus::kOk, take};
}

tls::IoResult MemoryEndpoint::writev(const struct iovec* iov, int iovcnt) {
  if (pipe_->closed_[side_]) return {tls::IoStatus::kError, 0};
  auto& queue = pipe_->dir_[side_];
  // Budget for this call: capacity headroom and the per-call chunk limit
  // apply to the vector as a whole, matching one flat write().
  size_t budget = static_cast<size_t>(-1);
  if (pipe_->capacity_ > 0) {
    if (queue.size() >= pipe_->capacity_)
      return {tls::IoStatus::kWouldBlock, 0};
    budget = pipe_->capacity_ - queue.size();
  }
  if (pipe_->chunk_limit_ > 0) budget = std::min(budget, pipe_->chunk_limit_);
  size_t total = 0;
  for (int i = 0; i < iovcnt && budget > 0; ++i) {
    const auto* base = static_cast<const uint8_t*>(iov[i].iov_base);
    const size_t take = std::min(iov[i].iov_len, budget);
    queue.insert(queue.end(), base, base + take);
    total += take;
    budget -= take;
  }
  pipe_->bytes_transferred_ += total;
  if (total == 0) return {tls::IoStatus::kWouldBlock, 0};
  return {tls::IoStatus::kOk, total};
}

size_t MemoryEndpoint::readable() const {
  return pipe_->dir_[1 - side_].size();
}

}  // namespace qtls::net
