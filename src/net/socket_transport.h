// Non-blocking socket plumbing: a Transport over a connected fd, a TCP
// listener, and a socketpair helper for in-process client/server tests that
// still exercise real fds and epoll.
#pragma once

#include <string>
#include <utility>

#include "common/status.h"
#include "tls/transport.h"

namespace qtls::net {

class SocketTransport final : public tls::Transport {
 public:
  // Takes ownership of a connected fd; sets O_NONBLOCK.
  explicit SocketTransport(int fd);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  tls::IoResult read(uint8_t* buf, size_t len) override;
  tls::IoResult write(const uint8_t* buf, size_t len) override;
  // Native scatter-gather via sendmsg (writev cannot carry MSG_NOSIGNAL).
  tls::IoResult writev(const struct iovec* iov, int iovcnt) override;

  int fd() const { return fd_; }

 private:
  int fd_;
};

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  // Binds 127.0.0.1:port (port 0 = ephemeral; query with port()).
  // `reuseport` lets several listeners share one port, the kernel load-
  // balancing accepts across them (nginx's multi-worker accept model).
  Status listen(uint16_t port, int backlog = 512, bool reuseport = false);
  // Non-blocking accept; -1 when none pending.
  int accept_fd();
  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Non-blocking connect to 127.0.0.1:port; returns connected (or in-progress)
// fd.
Result<int> tcp_connect(uint16_t port);

// AF_UNIX socketpair with both ends non-blocking.
Result<std::pair<int, int>> make_socketpair();

// Sets O_NONBLOCK on fd. fcntl can fail (bad fd, exhausted table) — a
// silently-blocking fd would stall the whole event loop on its first read,
// so accept paths must check this instead of serving the fd anyway.
[[nodiscard]] Status set_nonblocking(int fd);

}  // namespace qtls::net
