#include "net/timer_wheel.h"

#include <algorithm>

namespace qtls::net {

namespace {
size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TimerWheel::TimerWheel(uint64_t tick_ms, size_t num_slots)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      slots_(round_up_pow2(std::max<size_t>(num_slots, 2))) {}

TimerWheel::TimerId TimerWheel::arm(uint64_t now_ms, uint64_t delay_ms,
                                    Callback cb) {
  const TimerId id = next_id_++;
  const uint64_t deadline = now_ms + delay_ms;
  const size_t slot = slot_of(deadline);
  slots_[slot].push_back(Entry{id, deadline});
  timers_.emplace(id, Timer{deadline, slot, std::move(cb)});
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  // The slot entry is left behind and skipped lazily during advance — a
  // cancel is O(1), the stale entry costs one map miss later.
  timers_.erase(it);
  ++cancelled_total_;
  return true;
}

void TimerWheel::collect_slot(size_t slot, uint64_t now_ms,
                              std::vector<TimerId>* due) {
  auto& bucket = slots_[slot];
  size_t kept = 0;
  for (size_t i = 0; i < bucket.size(); ++i) {
    const Entry& e = bucket[i];
    auto it = timers_.find(e.id);
    if (it == timers_.end()) continue;  // cancelled: drop the stale entry
    if (e.deadline_ms <= now_ms) {
      due->push_back(e.id);
      continue;  // fires: drop from the bucket now
    }
    bucket[kept++] = e;  // future round: stays armed
  }
  bucket.resize(kept);
}

size_t TimerWheel::advance(uint64_t now_ms) {
  const uint64_t cur_tick = now_ms / tick_ms_;
  std::vector<TimerId> due;

  if (!ticked_ || cur_tick - last_tick_ >= slots_.size()) {
    // First advance, or the clock jumped a whole revolution (virtual-time
    // tests): one full sweep instead of walking every elapsed tick.
    for (size_t s = 0; s < slots_.size(); ++s) collect_slot(s, now_ms, &due);
  } else {
    for (uint64_t t = last_tick_ + 1; t <= cur_tick; ++t)
      collect_slot(static_cast<size_t>(t) & (slots_.size() - 1), now_ms, &due);
    // An entry armed within the current tick (e.g. zero delay) lands in the
    // current slot, which the walk above missed when the tick didn't move.
    collect_slot(static_cast<size_t>(cur_tick) & (slots_.size() - 1), now_ms,
                 &due);
  }
  ticked_ = true;
  last_tick_ = cur_tick;

  size_t fired = 0;
  for (TimerId id : due) {
    auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // cancelled by an earlier callback
    Callback cb = std::move(it->second.cb);
    timers_.erase(it);
    ++fired;
    ++fired_total_;
    if (cb) cb();
  }
  return fired;
}

uint64_t TimerWheel::until_next(uint64_t now_ms) const {
  uint64_t best = UINT64_MAX;
  for (const auto& [id, timer] : timers_) {
    (void)id;
    if (timer.deadline_ms <= now_ms) return 0;
    best = std::min(best, timer.deadline_ms - now_ms);
  }
  return best;
}

}  // namespace qtls::net
