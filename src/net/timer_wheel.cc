#include "net/timer_wheel.h"

#include <algorithm>

namespace qtls::net {

namespace {
size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TimerWheel::TimerWheel(uint64_t tick_ms, size_t num_slots)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
      slots_(round_up_pow2(std::max<size_t>(num_slots, 2)), nullptr),
      pool_("net.timer_wheel") {}

TimerWheel::~TimerWheel() {
  for (Node*& head : slots_) {
    Node* node = head;
    head = nullptr;
    while (node != nullptr) {
      Node* next = node->next;
      pool_.destroy(node);
      node = next;
    }
  }
}

TimerWheel::TimerId TimerWheel::arm(uint64_t now_ms, uint64_t delay_ms,
                                    Callback cb) {
  Node* node = pool_.create();
  const size_t index = pool_.index_of(node);
  if (index >= gens_.size()) gens_.resize(index + 1, 0);
  node->index = static_cast<uint32_t>(index);
  node->deadline_ms = now_ms + delay_ms;
  node->cb = std::move(cb);

  const size_t slot = slot_of(node->deadline_ms);
  node->slot = static_cast<uint32_t>(slot);
  node->prev = nullptr;
  node->next = slots_[slot];
  if (node->next != nullptr) node->next->prev = node;
  slots_[slot] = node;

  // A fresh generation per arm; release() bumps it again, so an id is
  // resolvable only for the exact arm..release window of its slab slot.
  ++gens_[index];
  return id_of(node);
}

TimerWheel::Node* TimerWheel::resolve(TimerId id, size_t* index) {
  if (id == 0) return nullptr;
  const size_t idx = static_cast<size_t>(id >> 32) - 1;
  const uint32_t gen = static_cast<uint32_t>(id);
  if (idx >= gens_.size() || gens_[idx] != gen) return nullptr;
  *index = idx;
  return pool_.at(idx);
}

void TimerWheel::unlink(Node* node) {
  if (node->prev != nullptr) {
    node->prev->next = node->next;
  } else if (slots_[node->slot] == node) {
    slots_[node->slot] = node->next;
  }
  if (node->next != nullptr) node->next->prev = node->prev;
  node->prev = nullptr;
  node->next = nullptr;
}

void TimerWheel::release(Node* node, size_t index) {
  ++gens_[index];  // invalidates every outstanding id for this slab slot
  pool_.destroy(node);
}

bool TimerWheel::cancel(TimerId id) {
  size_t index = 0;
  Node* node = resolve(id, &index);
  if (node == nullptr) return false;
  // Eager O(1) unlink — no stale bucket entry left behind. A node already
  // collected for the in-flight advance() is unlinked but still resolvable;
  // releasing it here bumps the generation so the fire loop skips it.
  if (linked(node)) unlink(node);
  release(node, index);
  ++cancelled_total_;
  return true;
}

void TimerWheel::collect_slot(size_t slot, uint64_t now_ms,
                              std::vector<TimerId>* due) {
  Node* node = slots_[slot];
  while (node != nullptr) {
    Node* next = node->next;
    if (node->deadline_ms <= now_ms) {
      unlink(node);  // out of the bucket now; fires (or is cancelled) below
      due->push_back(id_of(node));
    }
    node = next;  // future round: stays linked, stays armed
  }
}

size_t TimerWheel::advance(uint64_t now_ms) {
  const uint64_t cur_tick = now_ms / tick_ms_;
  std::vector<TimerId> due;
  due.swap(due_);  // reuse capacity; a re-entrant advance() starts fresh

  if (!ticked_ || cur_tick - last_tick_ >= slots_.size()) {
    // First advance, or the clock jumped a whole revolution (virtual-time
    // tests): one full sweep instead of walking every elapsed tick.
    for (size_t s = 0; s < slots_.size(); ++s) collect_slot(s, now_ms, &due);
  } else {
    for (uint64_t t = last_tick_ + 1; t <= cur_tick; ++t)
      collect_slot(static_cast<size_t>(t) & (slots_.size() - 1), now_ms, &due);
    // An entry armed within the current tick (e.g. zero delay) lands in the
    // current slot, which the walk above missed when the tick didn't move.
    // Already-collected nodes were unlinked, so this never double-fires.
    collect_slot(static_cast<size_t>(cur_tick) & (slots_.size() - 1), now_ms,
                 &due);
  }
  ticked_ = true;
  last_tick_ = cur_tick;

  size_t fired = 0;
  for (TimerId id : due) {
    size_t index = 0;
    Node* node = resolve(id, &index);
    if (node == nullptr) continue;  // cancelled by an earlier callback
    Callback cb = std::move(node->cb);
    release(node, index);
    ++fired;
    ++fired_total_;
    if (cb) cb();
  }
  due.clear();
  due_ = std::move(due);
  return fired;
}

uint64_t TimerWheel::until_next(uint64_t now_ms) const {
  uint64_t best = UINT64_MAX;
  for (const Node* head : slots_) {
    for (const Node* node = head; node != nullptr; node = node->next) {
      if (node->deadline_ms <= now_ms) return 0;
      best = std::min(best, node->deadline_ms - now_ms);
    }
  }
  return best;
}

}  // namespace qtls::net
