// Hashed timer wheel — the per-connection deadline substrate of the
// overload-control plane (DESIGN.md §10). Any layer that owns a clock can
// arm millisecond deadlines against it: the real-time event loop drives the
// wheel from CLOCK_MONOTONIC, tests and the sim drive it from a virtual
// clock, so timeout behaviour is deterministic where it needs to be.
//
// Design: classic hashed wheel (Varghese & Lauck). Deadlines hash into
// `num_slots` buckets by tick index; advance() walks only the buckets
// between the last observed tick and now, firing entries whose deadline has
// passed and leaving future-round entries in place. Arm/cancel are O(1);
// advance is O(buckets walked + entries fired). A clock jump larger than
// one wheel revolution degrades to a single full sweep instead of walking
// every elapsed tick, so huge virtual-time steps stay cheap.
//
// Single-threaded by design, like the event loop that owns it. Callbacks
// may arm and cancel timers (including ones already collected for this
// advance: a cancelled-but-collected timer does not fire).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace qtls::net {

class TimerWheel {
 public:
  using TimerId = uint64_t;  // 0 is never a valid id
  using Callback = std::function<void()>;

  // `tick_ms` is the wheel resolution: deadlines fire on the first
  // advance() whose `now_ms` reaches them, so accuracy is bounded by how
  // often the owner advances, not by the tick. `num_slots` is rounded up to
  // a power of two.
  explicit TimerWheel(uint64_t tick_ms = 4, size_t num_slots = 256);

  // Arms a timer `delay_ms` from `now_ms`. A zero delay fires on the next
  // advance. Returns the id to cancel with.
  TimerId arm(uint64_t now_ms, uint64_t delay_ms, Callback cb);

  // Cancels an armed timer. False when the id already fired or was
  // cancelled (safe to call redundantly).
  bool cancel(TimerId id);

  // Fires every timer whose deadline is <= now_ms. Returns how many fired.
  size_t advance(uint64_t now_ms);

  size_t armed() const { return timers_.size(); }

  // Milliseconds from `now_ms` until the earliest armed deadline (0 when
  // one is already due), or UINT64_MAX when the wheel is empty. O(armed);
  // used to bound the event loop's epoll sleep, where armed counts are
  // per-connection and the loop is about to block anyway.
  uint64_t until_next(uint64_t now_ms) const;

  uint64_t fired_total() const { return fired_total_; }
  uint64_t cancelled_total() const { return cancelled_total_; }

 private:
  struct Entry {
    TimerId id;
    uint64_t deadline_ms;
  };
  struct Timer {
    uint64_t deadline_ms;
    size_t slot;
    Callback cb;
  };

  size_t slot_of(uint64_t deadline_ms) const {
    return static_cast<size_t>(deadline_ms / tick_ms_) & (slots_.size() - 1);
  }
  void collect_slot(size_t slot, uint64_t now_ms,
                    std::vector<TimerId>* due);

  uint64_t tick_ms_;
  std::vector<std::vector<Entry>> slots_;
  std::unordered_map<TimerId, Timer> timers_;
  TimerId next_id_ = 1;
  uint64_t last_tick_ = 0;
  bool ticked_ = false;  // last_tick_ is meaningful only after first advance
  uint64_t fired_total_ = 0;
  uint64_t cancelled_total_ = 0;
};

}  // namespace qtls::net
