// Hashed timer wheel — the per-connection deadline substrate of the
// overload-control plane (DESIGN.md §10). Any layer that owns a clock can
// arm millisecond deadlines against it: the real-time event loop drives the
// wheel from CLOCK_MONOTONIC, tests and the sim drive it from a virtual
// clock, so timeout behaviour is deterministic where it needs to be.
//
// Design: classic hashed wheel (Varghese & Lauck). Deadlines hash into
// `num_slots` buckets by tick index; advance() walks only the buckets
// between the last observed tick and now, firing entries whose deadline has
// passed and leaving future-round entries in place. Arm/cancel are O(1);
// advance is O(buckets walked + entries fired). A clock jump larger than
// one wheel revolution degrades to a single full sweep instead of walking
// every elapsed tick, so huge virtual-time steps stay cheap.
//
// Storage (DESIGN.md §14): timer entries are slab-allocated nodes linked
// into intrusive per-bucket lists — arming a deadline costs no heap
// allocation once the pool is warm, and a million armed idle-timeouts cost
// exactly one slab slot each instead of a hash-map node plus a bucket
// vector entry. A TimerId packs the node's slab index with a generation
// tag, so a stale cancel (the id already fired or was cancelled, its slot
// possibly reused) is rejected by a generation mismatch without ever
// touching freed node memory.
//
// Single-threaded by design, like the event loop that owns it. Callbacks
// may arm and cancel timers (including ones already collected for this
// advance: a cancelled-but-collected timer does not fire).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/slab.h"

namespace qtls::net {

class TimerWheel {
 public:
  using TimerId = uint64_t;  // 0 is never a valid id
  using Callback = std::function<void()>;

  // `tick_ms` is the wheel resolution: deadlines fire on the first
  // advance() whose `now_ms` reaches them, so accuracy is bounded by how
  // often the owner advances, not by the tick. `num_slots` is rounded up to
  // a power of two.
  explicit TimerWheel(uint64_t tick_ms = 4, size_t num_slots = 256);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms a timer `delay_ms` from `now_ms`. A zero delay fires on the next
  // advance. Returns the id to cancel with.
  TimerId arm(uint64_t now_ms, uint64_t delay_ms, Callback cb);

  // Cancels an armed timer. False when the id already fired or was
  // cancelled (safe to call redundantly).
  bool cancel(TimerId id);

  // Fires every timer whose deadline is <= now_ms. Returns how many fired.
  size_t advance(uint64_t now_ms);

  size_t armed() const { return pool_.live(); }

  // Milliseconds from `now_ms` until the earliest armed deadline (0 when
  // one is already due), or UINT64_MAX when the wheel is empty. O(armed);
  // used to bound the event loop's epoll sleep, where armed counts are
  // per-connection and the loop is about to block anyway.
  uint64_t until_next(uint64_t now_ms) const;

  uint64_t fired_total() const { return fired_total_; }
  uint64_t cancelled_total() const { return cancelled_total_; }

  // Node-pool occupancy (the churn soak's conservation assertions; also
  // aggregated into the worker's memory stats).
  common::SlabStats slab_stats() const { return pool_.stats(); }

 private:
  struct Node {
    uint64_t deadline_ms = 0;
    Node* prev = nullptr;  // intrusive bucket list (null when collected)
    Node* next = nullptr;
    uint32_t slot = 0;   // bucket this node is (or was last) linked into
    uint32_t index = 0;  // this node's slab index, fixed at arm
    Callback cb;
  };

  size_t slot_of(uint64_t deadline_ms) const {
    return static_cast<size_t>(deadline_ms / tick_ms_) & (slots_.size() - 1);
  }
  bool linked(const Node* node) const {
    return node->prev != nullptr || node->next != nullptr ||
           slots_[node->slot] == node;
  }
  void unlink(Node* node);
  // Resolve an id to its live node, or null on generation mismatch (fired,
  // cancelled, or slot since reused). Never dereferences freed memory: the
  // generation check consults gens_, not the node.
  Node* resolve(TimerId id, size_t* index);
  TimerId id_of(const Node* node) const {
    return (static_cast<uint64_t>(node->index) + 1) << 32 |
           gens_[node->index];
  }
  void collect_slot(size_t slot, uint64_t now_ms, std::vector<TimerId>* due);
  void release(Node* node, size_t index);

  uint64_t tick_ms_;
  std::vector<Node*> slots_;  // bucket list heads
  common::SlabPool<Node> pool_;
  std::vector<uint32_t> gens_;      // per-slab-slot generation tag
  std::vector<TimerId> due_;        // advance() scratch (capacity reused)
  uint64_t last_tick_ = 0;
  bool ticked_ = false;  // last_tick_ is meaningful only after first advance
  uint64_t fired_total_ = 0;
  uint64_t cancelled_total_ = 0;
};

}  // namespace qtls::net
