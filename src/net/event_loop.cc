#include "net/event_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace qtls::net {

namespace {
uint32_t to_epoll(bool want_read, bool want_write) {
  uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}
}  // namespace

EventLoop::EventLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::add(int fd, bool want_read, bool want_write,
                      Handler handler) {
  epoll_event ev{};
  ev.events = to_epoll(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    return err(Code::kIoError, std::strerror(errno));
  handlers_[fd] = std::move(handler);
  return Status::ok();
}

Status EventLoop::modify(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = to_epoll(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
    return err(Code::kIoError, std::strerror(errno));
  return Status::ok();
}

Status EventLoop::remove(int fd) {
  handlers_.erase(fd);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0)
    return err(Code::kIoError, std::strerror(errno));
  return Status::ok();
}

int EventLoop::run_once(int timeout_ms) {
  std::array<epoll_event, 128> events;
  const int n = ::epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    if (errno != EINTR) {
      QTLS_WARN << "epoll_wait: " << std::strerror(errno);
    }
    return 0;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<size_t>(i)].data.fd;
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed by a prior handler
    FdEvents fe;
    const uint32_t mask = events[static_cast<size_t>(i)].events;
    fe.readable = mask & (EPOLLIN | EPOLLHUP);
    fe.writable = mask & EPOLLOUT;
    fe.error = mask & EPOLLERR;
    // Copy: the handler may remove/replace itself.
    Handler handler = it->second;
    handler(fe);
  }
  return n;
}

}  // namespace qtls::net
