#include "net/event_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.h"

namespace qtls::net {

namespace {
uint32_t to_epoll(bool want_read, bool want_write) {
  uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}

uint64_t monotonic_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

EventLoop::EventLoop() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::add(int fd, bool want_read, bool want_write,
                      Handler handler) {
  epoll_event ev{};
  ev.events = to_epoll(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    return err(Code::kIoError, std::strerror(errno));
  handlers_[fd] = std::move(handler);
  return Status::ok();
}

Status EventLoop::modify(int fd, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = to_epoll(want_read, want_write);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
    return err(Code::kIoError, std::strerror(errno));
  return Status::ok();
}

Status EventLoop::remove(int fd) {
  handlers_.erase(fd);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0)
    return err(Code::kIoError, std::strerror(errno));
  return Status::ok();
}

void EventLoop::set_clock(std::function<uint64_t()> clock) {
  clock_ = std::move(clock);
}

uint64_t EventLoop::now_ms() const {
  return clock_ ? clock_() : monotonic_ms();
}

int EventLoop::run_once(int timeout_ms) {
  // Never sleep past the earliest armed deadline.
  if (timers_.armed() > 0) {
    const uint64_t next = timers_.until_next(now_ms());
    if (next != UINT64_MAX) {
      const int next_ms =
          next > static_cast<uint64_t>(INT32_MAX) ? INT32_MAX
                                                  : static_cast<int>(next);
      if (timeout_ms < 0 || next_ms < timeout_ms) timeout_ms = next_ms;
    }
  }
  std::array<epoll_event, 128> events;
  const int n = ::epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    if (errno != EINTR) {
      QTLS_WARN << "epoll_wait: " << std::strerror(errno);
    }
    if (timers_.armed() > 0) timers_.advance(now_ms());
    return 0;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<size_t>(i)].data.fd;
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed by a prior handler
    FdEvents fe;
    const uint32_t mask = events[static_cast<size_t>(i)].events;
    fe.readable = mask & (EPOLLIN | EPOLLHUP);
    fe.writable = mask & EPOLLOUT;
    fe.error = mask & EPOLLERR;
    // Copy: the handler may remove/replace itself.
    Handler handler = it->second;
    handler(fe);
  }
  if (timers_.armed() > 0) timers_.advance(now_ms());
  return n;
}

}  // namespace qtls::net
