#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qtls::net {

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return err(Code::kIoError, std::strerror(errno));
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    return err(Code::kIoError, std::strerror(errno));
  return Status::ok();
}

SocketTransport::SocketTransport(int fd) : fd_(fd) {
  // Best effort here: adopted fds from make_socketpair/accept4 are already
  // non-blocking; callers handing over foreign fds go through Worker::adopt,
  // which checks the Status itself before constructing a transport.
  (void)set_nonblocking(fd_);
}

SocketTransport::~SocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

// EINTR is not an error: a reload SIGHUP or supervision signal landing
// mid-syscall must never kill a healthy connection. Retry, the same way
// event_loop.cc treats an interrupted epoll_wait as zero events.
tls::IoResult SocketTransport::read(uint8_t* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n > 0) return {tls::IoStatus::kOk, static_cast<size_t>(n)};
    if (n == 0) return {tls::IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {tls::IoStatus::kWouldBlock, 0};
    return {tls::IoStatus::kError, 0};
  }
}

tls::IoResult SocketTransport::write(const uint8_t* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
    if (n > 0) return {tls::IoStatus::kOk, static_cast<size_t>(n)};
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return {tls::IoStatus::kWouldBlock, 0};
    return {tls::IoStatus::kError, 0};
  }
}

tls::IoResult SocketTransport::writev(const struct iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  for (;;) {
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n > 0) return {tls::IoStatus::kOk, static_cast<size_t>(n)};
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return {tls::IoStatus::kWouldBlock, 0};
    return {tls::IoStatus::kError, 0};
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Status TcpListener::listen(uint16_t port, int backlog, bool reuseport) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return err(Code::kIoError, std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) ::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return err(Code::kIoError, std::strerror(errno));
  if (::listen(fd_, backlog) != 0)
    return err(Code::kIoError, std::strerror(errno));

  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  return Status::ok();
}

int TcpListener::accept_fd() {
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Result<int> tcp_connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return err(Code::kIoError, std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return err(Code::kIoError, std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::pair<int, int>> make_socketpair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0,
                   fds) != 0)
    return err(Code::kIoError, std::strerror(errno));
  return std::make_pair(fds[0], fds[1]);
}

}  // namespace qtls::net
