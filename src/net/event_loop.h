// Thin epoll wrapper — the I/O multiplexing core of the event-driven web
// architecture (paper §2.2). Handlers are per-fd callbacks invoked from
// run_once(); the worker layers connection state machines on top. The loop
// also owns a hashed timer wheel (DESIGN.md §10) so any layer can arm
// per-connection millisecond deadlines: the epoll sleep is clamped to the
// next deadline and the wheel advances after dispatch. The wheel's clock is
// injectable — CLOCK_MONOTONIC by default, a virtual clock in tests — so
// timeout behaviour is deterministic where it needs to be.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/status.h"
#include "net/timer_wheel.h"

namespace qtls::net {

struct FdEvents {
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class EventLoop {
 public:
  using Handler = std::function<void(FdEvents)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Status add(int fd, bool want_read, bool want_write, Handler handler);
  Status modify(int fd, bool want_read, bool want_write);
  Status remove(int fd);
  bool watching(int fd) const { return handlers_.count(fd) > 0; }

  // Waits up to timeout_ms (-1 = forever, 0 = poll) and dispatches handlers,
  // then advances the timer wheel. The actual epoll sleep never overshoots
  // the earliest armed deadline. Returns the number of fds dispatched.
  int run_once(int timeout_ms);

  size_t watched_count() const { return handlers_.size(); }

  // Deadline plane. Timer callbacks run inside run_once, after fd dispatch.
  TimerWheel& timers() { return timers_; }
  const TimerWheel& timers() const { return timers_; }

  // Millisecond clock feeding the wheel (monotonic by default). Null
  // restores the monotonic clock.
  void set_clock(std::function<uint64_t()> clock);
  uint64_t now_ms() const;

 private:
  int epoll_fd_ = -1;
  std::unordered_map<int, Handler> handlers_;
  TimerWheel timers_;
  std::function<uint64_t()> clock_;
};

}  // namespace qtls::net
