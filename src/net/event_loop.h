// Thin epoll wrapper — the I/O multiplexing core of the event-driven web
// architecture (paper §2.2). Handlers are per-fd callbacks invoked from
// run_once(); the worker layers connection state machines on top.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/status.h"

namespace qtls::net {

struct FdEvents {
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class EventLoop {
 public:
  using Handler = std::function<void(FdEvents)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Status add(int fd, bool want_read, bool want_write, Handler handler);
  Status modify(int fd, bool want_read, bool want_write);
  Status remove(int fd);
  bool watching(int fd) const { return handlers_.count(fd) > 0; }

  // Waits up to timeout_ms (-1 = forever, 0 = poll) and dispatches handlers.
  // Returns the number of fds dispatched.
  int run_once(int timeout_ms);

  size_t watched_count() const { return handlers_.size(); }

 private:
  int epoll_fd_ = -1;
  std::unordered_map<int, Handler> handlers_;
};

}  // namespace qtls::net
