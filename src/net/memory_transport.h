// In-memory duplex byte pipe implementing tls::Transport on both ends —
// the unit/integration-test substitute for a TCP connection. Optionally
// rate-limited per call to exercise kWouldBlock paths deterministically.
#pragma once

#include <deque>
#include <memory>

#include "common/bytes.h"
#include "tls/transport.h"

namespace qtls::net {

class MemoryPipe;

class MemoryEndpoint final : public tls::Transport {
 public:
  tls::IoResult read(uint8_t* buf, size_t len) override;
  tls::IoResult write(const uint8_t* buf, size_t len) override;
  // Gathering write with the same chunk_limit/capacity semantics as a
  // single write() call (the whole vector counts as one call), so tests
  // exercising kWouldBlock see identical pacing via either entry point.
  tls::IoResult writev(const struct iovec* iov, int iovcnt) override;

  // Bytes readable right now.
  size_t readable() const;

 private:
  friend class MemoryPipe;
  MemoryEndpoint(MemoryPipe* pipe, int side) : pipe_(pipe), side_(side) {}
  MemoryPipe* pipe_;
  int side_;
};

class MemoryPipe {
 public:
  MemoryPipe();

  MemoryEndpoint& a() { return *a_; }
  MemoryEndpoint& b() { return *b_; }

  // Caps bytes transferred per read/write call (0 = unlimited). Small caps
  // force record reassembly and kWouldBlock handling.
  void set_chunk_limit(size_t limit) { chunk_limit_ = limit; }
  // Caps total buffered bytes per direction (0 = unlimited): writes beyond
  // it return kWouldBlock, exercising kWantWrite.
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  // Close one side: subsequent reads on the peer drain then see kClosed;
  // writes from the closed side fail.
  void close_side(int side);

  uint64_t bytes_transferred() const { return bytes_transferred_; }

 private:
  friend class MemoryEndpoint;

  std::deque<uint8_t> dir_[2];  // dir_[0]: a->b, dir_[1]: b->a
  bool closed_[2] = {false, false};
  size_t chunk_limit_ = 0;
  size_t capacity_ = 0;
  uint64_t bytes_transferred_ = 0;
  std::unique_ptr<MemoryEndpoint> a_;
  std::unique_ptr<MemoryEndpoint> b_;
};

}  // namespace qtls::net
