# Empty compiler generated dependencies file for fig12b_polling_throughput.
# This may be replaced when dependencies are built.
