file(REMOVE_RECURSE
  "CMakeFiles/fig12b_polling_throughput.dir/fig12b_polling_throughput.cc.o"
  "CMakeFiles/fig12b_polling_throughput.dir/fig12b_polling_throughput.cc.o.d"
  "fig12b_polling_throughput"
  "fig12b_polling_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_polling_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
