# Empty compiler generated dependencies file for micro_async.
# This may be replaced when dependencies are built.
