file(REMOVE_RECURSE
  "CMakeFiles/micro_async.dir/micro_async.cc.o"
  "CMakeFiles/micro_async.dir/micro_async.cc.o.d"
  "micro_async"
  "micro_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
