# Empty dependencies file for fig8_tls13_cps.
# This may be replaced when dependencies are built.
