# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_tls13_cps.
