file(REMOVE_RECURSE
  "CMakeFiles/fig8_tls13_cps.dir/fig8_tls13_cps.cc.o"
  "CMakeFiles/fig8_tls13_cps.dir/fig8_tls13_cps.cc.o.d"
  "fig8_tls13_cps"
  "fig8_tls13_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tls13_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
