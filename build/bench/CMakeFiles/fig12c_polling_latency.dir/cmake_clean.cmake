file(REMOVE_RECURSE
  "CMakeFiles/fig12c_polling_latency.dir/fig12c_polling_latency.cc.o"
  "CMakeFiles/fig12c_polling_latency.dir/fig12c_polling_latency.cc.o.d"
  "fig12c_polling_latency"
  "fig12c_polling_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12c_polling_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
