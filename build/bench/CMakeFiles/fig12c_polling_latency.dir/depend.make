# Empty dependencies file for fig12c_polling_latency.
# This may be replaced when dependencies are built.
