file(REMOVE_RECURSE
  "CMakeFiles/ablation_ring_capacity.dir/ablation_ring_capacity.cc.o"
  "CMakeFiles/ablation_ring_capacity.dir/ablation_ring_capacity.cc.o.d"
  "ablation_ring_capacity"
  "ablation_ring_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ring_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
