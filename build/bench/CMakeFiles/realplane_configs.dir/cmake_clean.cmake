file(REMOVE_RECURSE
  "CMakeFiles/realplane_configs.dir/realplane_configs.cc.o"
  "CMakeFiles/realplane_configs.dir/realplane_configs.cc.o.d"
  "realplane_configs"
  "realplane_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realplane_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
