# Empty dependencies file for realplane_configs.
# This may be replaced when dependencies are built.
