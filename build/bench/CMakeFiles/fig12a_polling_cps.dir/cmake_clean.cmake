file(REMOVE_RECURSE
  "CMakeFiles/fig12a_polling_cps.dir/fig12a_polling_cps.cc.o"
  "CMakeFiles/fig12a_polling_cps.dir/fig12a_polling_cps.cc.o.d"
  "fig12a_polling_cps"
  "fig12a_polling_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_polling_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
