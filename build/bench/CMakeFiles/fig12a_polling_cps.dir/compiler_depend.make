# Empty compiler generated dependencies file for fig12a_polling_cps.
# This may be replaced when dependencies are built.
