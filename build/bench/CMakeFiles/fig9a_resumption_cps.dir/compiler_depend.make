# Empty compiler generated dependencies file for fig9a_resumption_cps.
# This may be replaced when dependencies are built.
