file(REMOVE_RECURSE
  "CMakeFiles/fig9a_resumption_cps.dir/fig9a_resumption_cps.cc.o"
  "CMakeFiles/fig9a_resumption_cps.dir/fig9a_resumption_cps.cc.o.d"
  "fig9a_resumption_cps"
  "fig9a_resumption_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_resumption_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
