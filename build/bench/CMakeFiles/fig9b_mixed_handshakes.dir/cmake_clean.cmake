file(REMOVE_RECURSE
  "CMakeFiles/fig9b_mixed_handshakes.dir/fig9b_mixed_handshakes.cc.o"
  "CMakeFiles/fig9b_mixed_handshakes.dir/fig9b_mixed_handshakes.cc.o.d"
  "fig9b_mixed_handshakes"
  "fig9b_mixed_handshakes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_mixed_handshakes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
