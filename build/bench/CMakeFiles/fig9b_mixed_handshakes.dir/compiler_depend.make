# Empty compiler generated dependencies file for fig9b_mixed_handshakes.
# This may be replaced when dependencies are built.
