# Empty dependencies file for fig10_transfer_throughput.
# This may be replaced when dependencies are built.
