# Empty dependencies file for fig7a_tlsrsa_cps.
# This may be replaced when dependencies are built.
