file(REMOVE_RECURSE
  "CMakeFiles/fig7a_tlsrsa_cps.dir/fig7a_tlsrsa_cps.cc.o"
  "CMakeFiles/fig7a_tlsrsa_cps.dir/fig7a_tlsrsa_cps.cc.o.d"
  "fig7a_tlsrsa_cps"
  "fig7a_tlsrsa_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_tlsrsa_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
