# Empty compiler generated dependencies file for micro_qat.
# This may be replaced when dependencies are built.
