file(REMOVE_RECURSE
  "CMakeFiles/micro_qat.dir/micro_qat.cc.o"
  "CMakeFiles/micro_qat.dir/micro_qat.cc.o.d"
  "micro_qat"
  "micro_qat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_qat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
