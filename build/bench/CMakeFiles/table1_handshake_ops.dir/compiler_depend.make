# Empty compiler generated dependencies file for table1_handshake_ops.
# This may be replaced when dependencies are built.
