# Empty compiler generated dependencies file for fig7c_ecdsa_curves.
# This may be replaced when dependencies are built.
