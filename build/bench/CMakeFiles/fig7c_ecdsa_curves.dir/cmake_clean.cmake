file(REMOVE_RECURSE
  "CMakeFiles/fig7c_ecdsa_curves.dir/fig7c_ecdsa_curves.cc.o"
  "CMakeFiles/fig7c_ecdsa_curves.dir/fig7c_ecdsa_curves.cc.o.d"
  "fig7c_ecdsa_curves"
  "fig7c_ecdsa_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_ecdsa_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
