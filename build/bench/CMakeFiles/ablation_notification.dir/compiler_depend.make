# Empty compiler generated dependencies file for ablation_notification.
# This may be replaced when dependencies are built.
