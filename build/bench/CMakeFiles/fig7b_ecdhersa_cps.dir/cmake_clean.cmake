file(REMOVE_RECURSE
  "CMakeFiles/fig7b_ecdhersa_cps.dir/fig7b_ecdhersa_cps.cc.o"
  "CMakeFiles/fig7b_ecdhersa_cps.dir/fig7b_ecdhersa_cps.cc.o.d"
  "fig7b_ecdhersa_cps"
  "fig7b_ecdhersa_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_ecdhersa_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
