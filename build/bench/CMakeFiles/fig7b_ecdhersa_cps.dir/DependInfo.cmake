
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7b_ecdhersa_cps.cc" "bench/CMakeFiles/fig7b_ecdhersa_cps.dir/fig7b_ecdhersa_cps.cc.o" "gcc" "bench/CMakeFiles/fig7b_ecdhersa_cps.dir/fig7b_ecdhersa_cps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/qtls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/qtls_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/qtls_net.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/qtls_server.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/qtls_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/qtls_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/qat/CMakeFiles/qtls_qat.dir/DependInfo.cmake"
  "/root/repo/build/src/asyncx/CMakeFiles/qtls_asyncx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qtls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
