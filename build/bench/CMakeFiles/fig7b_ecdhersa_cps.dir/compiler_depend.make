# Empty compiler generated dependencies file for fig7b_ecdhersa_cps.
# This may be replaced when dependencies are built.
