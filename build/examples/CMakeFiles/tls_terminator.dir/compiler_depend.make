# Empty compiler generated dependencies file for tls_terminator.
# This may be replaced when dependencies are built.
