file(REMOVE_RECURSE
  "CMakeFiles/tls_terminator.dir/tls_terminator.cpp.o"
  "CMakeFiles/tls_terminator.dir/tls_terminator.cpp.o.d"
  "tls_terminator"
  "tls_terminator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_terminator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
