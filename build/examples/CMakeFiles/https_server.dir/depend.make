# Empty dependencies file for https_server.
# This may be replaced when dependencies are built.
