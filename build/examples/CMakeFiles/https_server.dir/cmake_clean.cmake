file(REMOVE_RECURSE
  "CMakeFiles/https_server.dir/https_server.cpp.o"
  "CMakeFiles/https_server.dir/https_server.cpp.o.d"
  "https_server"
  "https_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/https_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
