# Empty compiler generated dependencies file for offload_configs.
# This may be replaced when dependencies are built.
