file(REMOVE_RECURSE
  "CMakeFiles/offload_configs.dir/offload_configs.cpp.o"
  "CMakeFiles/offload_configs.dir/offload_configs.cpp.o.d"
  "offload_configs"
  "offload_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
