file(REMOVE_RECURSE
  "CMakeFiles/key_schedule_test.dir/key_schedule_test.cc.o"
  "CMakeFiles/key_schedule_test.dir/key_schedule_test.cc.o.d"
  "key_schedule_test"
  "key_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
