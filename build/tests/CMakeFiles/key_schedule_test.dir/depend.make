# Empty dependencies file for key_schedule_test.
# This may be replaced when dependencies are built.
