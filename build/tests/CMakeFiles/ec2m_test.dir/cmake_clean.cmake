file(REMOVE_RECURSE
  "CMakeFiles/ec2m_test.dir/ec2m_test.cc.o"
  "CMakeFiles/ec2m_test.dir/ec2m_test.cc.o.d"
  "ec2m_test"
  "ec2m_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec2m_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
