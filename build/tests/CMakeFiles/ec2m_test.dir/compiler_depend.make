# Empty compiler generated dependencies file for ec2m_test.
# This may be replaced when dependencies are built.
