file(REMOVE_RECURSE
  "CMakeFiles/bn_test.dir/bn_test.cc.o"
  "CMakeFiles/bn_test.dir/bn_test.cc.o.d"
  "bn_test"
  "bn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
