file(REMOVE_RECURSE
  "CMakeFiles/tls13_resumption_test.dir/tls13_resumption_test.cc.o"
  "CMakeFiles/tls13_resumption_test.dir/tls13_resumption_test.cc.o.d"
  "tls13_resumption_test"
  "tls13_resumption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls13_resumption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
