# Empty dependencies file for tls13_resumption_test.
# This may be replaced when dependencies are built.
