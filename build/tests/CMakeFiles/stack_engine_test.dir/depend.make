# Empty dependencies file for stack_engine_test.
# This may be replaced when dependencies are built.
