file(REMOVE_RECURSE
  "CMakeFiles/stack_engine_test.dir/stack_engine_test.cc.o"
  "CMakeFiles/stack_engine_test.dir/stack_engine_test.cc.o.d"
  "stack_engine_test"
  "stack_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
