file(REMOVE_RECURSE
  "CMakeFiles/aes_test.dir/aes_test.cc.o"
  "CMakeFiles/aes_test.dir/aes_test.cc.o.d"
  "aes_test"
  "aes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
