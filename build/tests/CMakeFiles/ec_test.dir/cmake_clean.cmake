file(REMOVE_RECURSE
  "CMakeFiles/ec_test.dir/ec_test.cc.o"
  "CMakeFiles/ec_test.dir/ec_test.cc.o.d"
  "ec_test"
  "ec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
