# Empty compiler generated dependencies file for tls_async_test.
# This may be replaced when dependencies are built.
