file(REMOVE_RECURSE
  "CMakeFiles/tls_async_test.dir/tls_async_test.cc.o"
  "CMakeFiles/tls_async_test.dir/tls_async_test.cc.o.d"
  "tls_async_test"
  "tls_async_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tls_async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
