file(REMOVE_RECURSE
  "CMakeFiles/worker_disorder_test.dir/worker_disorder_test.cc.o"
  "CMakeFiles/worker_disorder_test.dir/worker_disorder_test.cc.o.d"
  "worker_disorder_test"
  "worker_disorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worker_disorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
