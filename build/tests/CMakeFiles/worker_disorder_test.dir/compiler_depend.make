# Empty compiler generated dependencies file for worker_disorder_test.
# This may be replaced when dependencies are built.
