file(REMOVE_RECURSE
  "CMakeFiles/qat_modes_test.dir/qat_modes_test.cc.o"
  "CMakeFiles/qat_modes_test.dir/qat_modes_test.cc.o.d"
  "qat_modes_test"
  "qat_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qat_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
