# Empty compiler generated dependencies file for qat_modes_test.
# This may be replaced when dependencies are built.
