file(REMOVE_RECURSE
  "CMakeFiles/gf2m_test.dir/gf2m_test.cc.o"
  "CMakeFiles/gf2m_test.dir/gf2m_test.cc.o.d"
  "gf2m_test"
  "gf2m_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf2m_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
