file(REMOVE_RECURSE
  "CMakeFiles/qat_device_test.dir/qat_device_test.cc.o"
  "CMakeFiles/qat_device_test.dir/qat_device_test.cc.o.d"
  "qat_device_test"
  "qat_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qat_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
