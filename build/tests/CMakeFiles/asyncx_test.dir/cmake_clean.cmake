file(REMOVE_RECURSE
  "CMakeFiles/asyncx_test.dir/asyncx_test.cc.o"
  "CMakeFiles/asyncx_test.dir/asyncx_test.cc.o.d"
  "asyncx_test"
  "asyncx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
