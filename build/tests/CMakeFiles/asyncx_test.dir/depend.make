# Empty dependencies file for asyncx_test.
# This may be replaced when dependencies are built.
