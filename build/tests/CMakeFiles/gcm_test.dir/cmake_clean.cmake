file(REMOVE_RECURSE
  "CMakeFiles/gcm_test.dir/gcm_test.cc.o"
  "CMakeFiles/gcm_test.dir/gcm_test.cc.o.d"
  "gcm_test"
  "gcm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
