# Empty dependencies file for gcm_test.
# This may be replaced when dependencies are built.
