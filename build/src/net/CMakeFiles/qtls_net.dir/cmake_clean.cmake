file(REMOVE_RECURSE
  "CMakeFiles/qtls_net.dir/event_loop.cc.o"
  "CMakeFiles/qtls_net.dir/event_loop.cc.o.d"
  "CMakeFiles/qtls_net.dir/memory_transport.cc.o"
  "CMakeFiles/qtls_net.dir/memory_transport.cc.o.d"
  "CMakeFiles/qtls_net.dir/socket_transport.cc.o"
  "CMakeFiles/qtls_net.dir/socket_transport.cc.o.d"
  "libqtls_net.a"
  "libqtls_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
