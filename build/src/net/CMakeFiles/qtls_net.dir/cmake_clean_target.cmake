file(REMOVE_RECURSE
  "libqtls_net.a"
)
