# Empty compiler generated dependencies file for qtls_net.
# This may be replaced when dependencies are built.
