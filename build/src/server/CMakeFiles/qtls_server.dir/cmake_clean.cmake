file(REMOVE_RECURSE
  "CMakeFiles/qtls_server.dir/http.cc.o"
  "CMakeFiles/qtls_server.dir/http.cc.o.d"
  "CMakeFiles/qtls_server.dir/ssl_engine_conf.cc.o"
  "CMakeFiles/qtls_server.dir/ssl_engine_conf.cc.o.d"
  "CMakeFiles/qtls_server.dir/worker.cc.o"
  "CMakeFiles/qtls_server.dir/worker.cc.o.d"
  "CMakeFiles/qtls_server.dir/worker_pool.cc.o"
  "CMakeFiles/qtls_server.dir/worker_pool.cc.o.d"
  "libqtls_server.a"
  "libqtls_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
