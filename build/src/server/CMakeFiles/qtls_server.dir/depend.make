# Empty dependencies file for qtls_server.
# This may be replaced when dependencies are built.
