file(REMOVE_RECURSE
  "libqtls_server.a"
)
