file(REMOVE_RECURSE
  "libqtls_asyncx.a"
)
