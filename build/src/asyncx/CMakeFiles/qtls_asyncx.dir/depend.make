# Empty dependencies file for qtls_asyncx.
# This may be replaced when dependencies are built.
