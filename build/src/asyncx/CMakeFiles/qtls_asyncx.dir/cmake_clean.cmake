file(REMOVE_RECURSE
  "CMakeFiles/qtls_asyncx.dir/job.cc.o"
  "CMakeFiles/qtls_asyncx.dir/job.cc.o.d"
  "CMakeFiles/qtls_asyncx.dir/wait_ctx.cc.o"
  "CMakeFiles/qtls_asyncx.dir/wait_ctx.cc.o.d"
  "libqtls_asyncx.a"
  "libqtls_asyncx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_asyncx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
