file(REMOVE_RECURSE
  "CMakeFiles/qtls_common.dir/bytes.cc.o"
  "CMakeFiles/qtls_common.dir/bytes.cc.o.d"
  "CMakeFiles/qtls_common.dir/conf.cc.o"
  "CMakeFiles/qtls_common.dir/conf.cc.o.d"
  "CMakeFiles/qtls_common.dir/log.cc.o"
  "CMakeFiles/qtls_common.dir/log.cc.o.d"
  "CMakeFiles/qtls_common.dir/rng.cc.o"
  "CMakeFiles/qtls_common.dir/rng.cc.o.d"
  "CMakeFiles/qtls_common.dir/stats.cc.o"
  "CMakeFiles/qtls_common.dir/stats.cc.o.d"
  "libqtls_common.a"
  "libqtls_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
