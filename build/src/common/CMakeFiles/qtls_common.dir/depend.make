# Empty dependencies file for qtls_common.
# This may be replaced when dependencies are built.
