file(REMOVE_RECURSE
  "libqtls_common.a"
)
