file(REMOVE_RECURSE
  "CMakeFiles/qtls_qat.dir/device.cc.o"
  "CMakeFiles/qtls_qat.dir/device.cc.o.d"
  "libqtls_qat.a"
  "libqtls_qat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_qat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
