file(REMOVE_RECURSE
  "libqtls_qat.a"
)
