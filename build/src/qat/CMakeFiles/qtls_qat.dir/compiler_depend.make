# Empty compiler generated dependencies file for qtls_qat.
# This may be replaced when dependencies are built.
