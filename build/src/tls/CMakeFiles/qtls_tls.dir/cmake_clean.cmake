file(REMOVE_RECURSE
  "CMakeFiles/qtls_tls.dir/connection.cc.o"
  "CMakeFiles/qtls_tls.dir/connection.cc.o.d"
  "CMakeFiles/qtls_tls.dir/context.cc.o"
  "CMakeFiles/qtls_tls.dir/context.cc.o.d"
  "CMakeFiles/qtls_tls.dir/key_schedule.cc.o"
  "CMakeFiles/qtls_tls.dir/key_schedule.cc.o.d"
  "CMakeFiles/qtls_tls.dir/messages.cc.o"
  "CMakeFiles/qtls_tls.dir/messages.cc.o.d"
  "CMakeFiles/qtls_tls.dir/record.cc.o"
  "CMakeFiles/qtls_tls.dir/record.cc.o.d"
  "CMakeFiles/qtls_tls.dir/session.cc.o"
  "CMakeFiles/qtls_tls.dir/session.cc.o.d"
  "libqtls_tls.a"
  "libqtls_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
