
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tls/connection.cc" "src/tls/CMakeFiles/qtls_tls.dir/connection.cc.o" "gcc" "src/tls/CMakeFiles/qtls_tls.dir/connection.cc.o.d"
  "/root/repo/src/tls/context.cc" "src/tls/CMakeFiles/qtls_tls.dir/context.cc.o" "gcc" "src/tls/CMakeFiles/qtls_tls.dir/context.cc.o.d"
  "/root/repo/src/tls/key_schedule.cc" "src/tls/CMakeFiles/qtls_tls.dir/key_schedule.cc.o" "gcc" "src/tls/CMakeFiles/qtls_tls.dir/key_schedule.cc.o.d"
  "/root/repo/src/tls/messages.cc" "src/tls/CMakeFiles/qtls_tls.dir/messages.cc.o" "gcc" "src/tls/CMakeFiles/qtls_tls.dir/messages.cc.o.d"
  "/root/repo/src/tls/record.cc" "src/tls/CMakeFiles/qtls_tls.dir/record.cc.o" "gcc" "src/tls/CMakeFiles/qtls_tls.dir/record.cc.o.d"
  "/root/repo/src/tls/session.cc" "src/tls/CMakeFiles/qtls_tls.dir/session.cc.o" "gcc" "src/tls/CMakeFiles/qtls_tls.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/qtls_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/qtls_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/qat/CMakeFiles/qtls_qat.dir/DependInfo.cmake"
  "/root/repo/build/src/asyncx/CMakeFiles/qtls_asyncx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qtls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
