# Empty dependencies file for qtls_tls.
# This may be replaced when dependencies are built.
