file(REMOVE_RECURSE
  "libqtls_tls.a"
)
