file(REMOVE_RECURSE
  "CMakeFiles/qtls_client.dir/https_client.cc.o"
  "CMakeFiles/qtls_client.dir/https_client.cc.o.d"
  "libqtls_client.a"
  "libqtls_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
