# Empty dependencies file for qtls_client.
# This may be replaced when dependencies are built.
