file(REMOVE_RECURSE
  "libqtls_client.a"
)
