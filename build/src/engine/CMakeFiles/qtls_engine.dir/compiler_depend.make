# Empty compiler generated dependencies file for qtls_engine.
# This may be replaced when dependencies are built.
