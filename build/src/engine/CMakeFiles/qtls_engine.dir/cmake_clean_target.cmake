file(REMOVE_RECURSE
  "libqtls_engine.a"
)
