file(REMOVE_RECURSE
  "CMakeFiles/qtls_engine.dir/provider.cc.o"
  "CMakeFiles/qtls_engine.dir/provider.cc.o.d"
  "CMakeFiles/qtls_engine.dir/qat_engine.cc.o"
  "CMakeFiles/qtls_engine.dir/qat_engine.cc.o.d"
  "CMakeFiles/qtls_engine.dir/stack_engine.cc.o"
  "CMakeFiles/qtls_engine.dir/stack_engine.cc.o.d"
  "libqtls_engine.a"
  "libqtls_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
