
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/bn.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/bn.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/bn.cc.o.d"
  "/root/repo/src/crypto/ec.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/ec.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/ec.cc.o.d"
  "/root/repo/src/crypto/ec2m.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/ec2m.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/ec2m.cc.o.d"
  "/root/repo/src/crypto/gcm.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/gcm.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/gcm.cc.o.d"
  "/root/repo/src/crypto/gf2m.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/gf2m.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/gf2m.cc.o.d"
  "/root/repo/src/crypto/hash.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/hash.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/hash.cc.o.d"
  "/root/repo/src/crypto/kdf.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/kdf.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/kdf.cc.o.d"
  "/root/repo/src/crypto/keystore.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/keystore.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/keystore.cc.o.d"
  "/root/repo/src/crypto/primes.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/primes.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/primes.cc.o.d"
  "/root/repo/src/crypto/rsa.cc" "src/crypto/CMakeFiles/qtls_crypto.dir/rsa.cc.o" "gcc" "src/crypto/CMakeFiles/qtls_crypto.dir/rsa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qtls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
