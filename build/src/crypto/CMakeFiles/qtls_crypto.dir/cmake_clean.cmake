file(REMOVE_RECURSE
  "CMakeFiles/qtls_crypto.dir/aes.cc.o"
  "CMakeFiles/qtls_crypto.dir/aes.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/bn.cc.o"
  "CMakeFiles/qtls_crypto.dir/bn.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/ec.cc.o"
  "CMakeFiles/qtls_crypto.dir/ec.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/ec2m.cc.o"
  "CMakeFiles/qtls_crypto.dir/ec2m.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/gcm.cc.o"
  "CMakeFiles/qtls_crypto.dir/gcm.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/gf2m.cc.o"
  "CMakeFiles/qtls_crypto.dir/gf2m.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/hash.cc.o"
  "CMakeFiles/qtls_crypto.dir/hash.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/kdf.cc.o"
  "CMakeFiles/qtls_crypto.dir/kdf.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/keystore.cc.o"
  "CMakeFiles/qtls_crypto.dir/keystore.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/primes.cc.o"
  "CMakeFiles/qtls_crypto.dir/primes.cc.o.d"
  "CMakeFiles/qtls_crypto.dir/rsa.cc.o"
  "CMakeFiles/qtls_crypto.dir/rsa.cc.o.d"
  "libqtls_crypto.a"
  "libqtls_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
