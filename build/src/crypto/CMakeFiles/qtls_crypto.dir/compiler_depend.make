# Empty compiler generated dependencies file for qtls_crypto.
# This may be replaced when dependencies are built.
