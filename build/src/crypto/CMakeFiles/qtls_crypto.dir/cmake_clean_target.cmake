file(REMOVE_RECURSE
  "libqtls_crypto.a"
)
