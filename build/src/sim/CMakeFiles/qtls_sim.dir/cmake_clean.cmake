file(REMOVE_RECURSE
  "CMakeFiles/qtls_sim.dir/qat_sim.cc.o"
  "CMakeFiles/qtls_sim.dir/qat_sim.cc.o.d"
  "CMakeFiles/qtls_sim.dir/system.cc.o"
  "CMakeFiles/qtls_sim.dir/system.cc.o.d"
  "libqtls_sim.a"
  "libqtls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
