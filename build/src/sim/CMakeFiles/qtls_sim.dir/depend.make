# Empty dependencies file for qtls_sim.
# This may be replaced when dependencies are built.
