file(REMOVE_RECURSE
  "libqtls_sim.a"
)
