// Remote-offload crossover bench (DESIGN.md §13), virtual time.
//
// One worker, closed loop, ECDHE P-256: either computes inline in software
// (sw_ecdh_p256 CPU per op) or ships batches of B ops over the remote
// channel — paying serialize + per-item encode CPU, one RTT, the server's
// per-op dispatch, and the server's engine-pool service time
// (ceil(B/engines) rounds). The sweep finds, per RTT, the smallest batch
// size where the remote tier out-runs inline software: the crossover the
// engine's ladder relies on when it prefers a live channel over the
// software fallback.
//
// Exit-status gates:
//   * at the calibrated RTT (and every swept RTT) a crossover exists
//     inside the swept batch range,
//   * beyond the crossover the remote tier keeps beating software for
//     every larger batch in the sweep,
//   * the crossover batch is non-decreasing in RTT (a longer wire needs
//     more coalescing to amortize, never less).
//
// One machine-readable line per point, grep '^BENCH_JSON':
//   BENCH_JSON {"metric":"remote.crossover.point","rtt_us":120,...}
//   BENCH_JSON {"metric":"remote.crossover","rtt_us":120,"batch":...}
// QTLS_BENCH_DURATION_MS scales the virtual measurement window
// (default 400 virtual ms).
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "sim/costs.h"
#include "sim/des.h"

using namespace qtls;

namespace {

// Closed-loop inline software: one op at a time, each costing the full
// software point multiplication.
double sw_ops_per_sec(const sim::CostModel& costs, sim::SimTime window) {
  sim::Simulator sim;
  uint64_t done = 0;
  std::function<void()> pump = [&] {
    if (sim.now() >= window) return;
    ++done;
    sim.schedule_after(costs.sw_cost(sim::SOp::kEcdhP256), pump);
  };
  pump();
  sim.run_until(window);
  return static_cast<double>(done) /
         (static_cast<double>(window) / sim::kSec);
}

// Closed-loop remote batches: serialize + encode CPU, then one RTT plus
// the server's dispatch and engine-pool service before the next batch.
double remote_ops_per_sec(const sim::CostModel& costs, sim::SimTime rtt,
                          int batch, sim::SimTime window) {
  sim::Simulator sim;
  uint64_t done = 0;
  const sim::SimTime svc = costs.sw_cost(sim::SOp::kEcdhP256);
  const int engines = costs.remote_server_engines;
  const sim::SimTime cycle =
      costs.remote_serialize_cpu + batch * costs.remote_item_cpu + rtt +
      batch * costs.remote_server_op_dispatch +
      ((batch + engines - 1) / engines) * svc;
  std::function<void()> pump = [&] {
    if (sim.now() >= window) return;
    done += static_cast<uint64_t>(batch);
    sim.schedule_after(cycle, pump);
  };
  pump();
  sim.run_until(window);
  return static_cast<double>(done) /
         (static_cast<double>(window) / sim::kSec);
}

}  // namespace

int main() {
  uint64_t window_ms = 400;
  if (const char* env = std::getenv("QTLS_BENCH_DURATION_MS")) {
    const uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) window_ms = v;
  }
  const sim::SimTime window =
      static_cast<sim::SimTime>(window_ms) * sim::kMs;

  sim::CostModel costs;
  const std::vector<int> batches = {1, 2, 4, 8, 16, 32};
  const std::vector<sim::SimTime> rtts = {60 * sim::kUs, costs.remote_rtt,
                                          500 * sim::kUs};

  std::printf("=== Remote offload crossover (virtual time, ECDHE P-256, "
              "%d server engines) ===\n",
              costs.remote_server_engines);
  const double sw = sw_ops_per_sec(costs, window);
  std::printf("inline software: %.0f ops/s\n\n", sw);

  bool gate_ok = true;
  int prev_crossover = 0;
  for (const sim::SimTime rtt : rtts) {
    const long rtt_us = static_cast<long>(rtt / sim::kUs);
    int crossover = -1;
    bool beats_beyond = true;
    for (const int b : batches) {
      const double remote = remote_ops_per_sec(costs, rtt, b, window);
      std::printf(
          "BENCH_JSON {\"metric\":\"remote.crossover.point\",\"rtt_us\":%ld,"
          "\"batch\":%d,\"remote_ops_per_sec\":%.0f,\"sw_ops_per_sec\":%.0f}"
          "\n",
          rtt_us, b, remote, sw);
      if (remote > sw) {
        if (crossover < 0) crossover = b;
      } else if (crossover >= 0) {
        beats_beyond = false;  // fell back below software past the crossover
      }
    }
    std::printf("BENCH_JSON {\"metric\":\"remote.crossover\",\"rtt_us\":%ld,"
                "\"batch\":%d}\n\n",
                rtt_us, crossover);

    if (crossover < 0) {
      std::printf("GATE FAIL: no crossover at rtt=%ld us within batch<=%d — "
                  "remote batching never beats inline software\n",
                  rtt_us, batches.back());
      gate_ok = false;
      continue;
    }
    if (!beats_beyond) {
      std::printf("GATE FAIL: remote tier fell back below software beyond "
                  "the crossover at rtt=%ld us\n", rtt_us);
      gate_ok = false;
    }
    if (crossover < prev_crossover) {
      std::printf("GATE FAIL: crossover shrank as RTT grew "
                  "(rtt=%ld us: batch %d < previous %d)\n",
                  rtt_us, crossover, prev_crossover);
      gate_ok = false;
    }
    prev_crossover = crossover;
  }
  return gate_ok ? 0 : 1;
}
