// Million-connection scale gate (DESIGN.md §14, EXPERIMENTS.md):
//
//   Part A measures the real idle footprint of an established connection —
//   full handshakes over MemoryPipe in release mode (handshake scratch
//   freed, RX chunk shed) vs the retain-mode baseline that keeps the
//   pre-scale-pass behavior — and gates on bytes/idle-connection being
//   under budget AND at least 2x smaller than the baseline.
//
//   Part B drives the fleet DES: a million virtual-time connections across
//   N simulated servers behind a load balancer, with cross-fleet session
//   resumption through deterministic-epoch TicketKeyRings (real seal and
//   unseal per ticket). Gates: every connection completes, the resumption
//   hit rate is >= 0.99, resumed tickets actually cross servers, and the
//   slab pool conserves (live == 0, allocs == frees) at the end.
//
// Exits non-zero when any gate fails; BENCH_JSON lines carry the numbers.
// QTLS_MILLION_CONN_N / QTLS_MILLION_CONN_SERVERS scale the fleet run.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/slab.h"
#include "crypto/keystore.h"
#include "engine/provider.h"
#include "figlib.h"
#include "net/memory_transport.h"
#include "sim/fleet.h"
#include "tls/connection.h"
#include "tls/context.h"

namespace qtls {
namespace {

constexpr size_t kIdleBudget = 4096;  // bytes per idle established connection
constexpr double kMinShrink = 2.0;
constexpr double kMinHitRate = 0.99;

uint64_t env_u64(const char* name, uint64_t dflt) {
  if (const char* e = std::getenv(name)) return std::strtoull(e, nullptr, 10);
  return dflt;
}

// One in-memory client/server pair, same shape as the tier-1 footprint
// tests but gtest-free: the bench measures, the gate decides.
struct Pair {
  net::MemoryPipe pipe;
  engine::SoftwareProvider server_provider{1};
  engine::SoftwareProvider client_provider{2};
  std::unique_ptr<tls::TlsContext> server_ctx;
  std::unique_ptr<tls::TlsContext> client_ctx;
  common::SlabPool<tls::HandshakeScratch> scratch_pool;
  std::unique_ptr<tls::TlsConnection> server;
  std::unique_ptr<tls::TlsConnection> client;

  Pair(bool retain, uint64_t seed) {
    tls::TlsContextConfig scfg;
    scfg.is_server = true;
    scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
    scfg.retain_handshake_state = retain;
    scfg.drbg_seed = seed;
    server_ctx = std::make_unique<tls::TlsContext>(scfg, &server_provider);
    server_ctx->credentials().rsa_key = &test_rsa2048();

    tls::TlsContextConfig ccfg;
    ccfg.cipher_suites = scfg.cipher_suites;
    ccfg.retain_handshake_state = retain;
    ccfg.drbg_seed = seed + 1;
    client_ctx = std::make_unique<tls::TlsContext>(ccfg, &client_provider);

    server = std::make_unique<tls::TlsConnection>(server_ctx.get(), &pipe.b(),
                                                  &scratch_pool);
    client = std::make_unique<tls::TlsConnection>(client_ctx.get(), &pipe.a(),
                                                  &scratch_pool);
  }

  // Handshake, one echo, then drain both sides to keepalive-idle (the
  // kWantRead read is what sheds the RX chunk in release mode).
  bool settle() {
    for (int i = 0; i < 200; ++i) {
      (void)client->handshake();
      (void)server->handshake();
      if (client->handshake_complete() && server->handshake_complete()) break;
    }
    if (!client->handshake_complete() || !server->handshake_complete())
      return false;
    if (client->write(to_bytes("ping")) != tls::TlsResult::kOk) return false;
    Bytes got;
    if (server->read(&got) != tls::TlsResult::kOk || to_string(got) != "ping")
      return false;
    got.clear();
    (void)server->read(&got);
    (void)client->read(&got);
    return true;
  }

  size_t server_idle_bytes() const {
    return sizeof(tls::TlsConnection) + server->heap_footprint();
  }
};

// Mean idle bytes of an established server connection across `pairs` real
// handshakes. Returns 0 on any handshake failure.
size_t measure_idle_bytes(bool retain, int pairs) {
  size_t total = 0;
  for (int i = 0; i < pairs; ++i) {
    Pair p(retain, 1000 + 10 * static_cast<uint64_t>(i));
    if (!p.settle()) return 0;
    total += p.server_idle_bytes();
  }
  return total / static_cast<size_t>(pairs);
}

int gate(bool ok, const char* what) {
  if (!ok) std::printf("GATE FAIL: %s\n", what);
  return ok ? 0 : 1;
}

int run() {
  bench::print_header("million_conn",
                      "scale pass: idle footprint + fleet resumption");

  // ---- Part A: measured idle bytes/connection, both modes ----------------
  constexpr int kPairs = 16;
  const size_t released = measure_idle_bytes(/*retain=*/false, kPairs);
  const size_t retained = measure_idle_bytes(/*retain=*/true, kPairs);
  if (released == 0 || retained == 0) {
    std::printf("GATE FAIL: footprint handshakes did not complete\n");
    return 1;
  }
  const double shrink =
      static_cast<double>(retained) / static_cast<double>(released);
  std::printf("idle bytes/connection: released %zu  retained %zu  (%.2fx)\n",
              released, retained, shrink);
  std::printf(
      "BENCH_JSON {\"metric\":\"million_conn.idle_footprint\","
      "\"released_bytes\":%zu,\"retained_bytes\":%zu,"
      "\"shrink_factor\":%.2f,\"budget_bytes\":%zu}\n",
      released, retained, shrink, kIdleBudget);

  // ---- Part B: the fleet ---------------------------------------------------
  sim::FleetConfig fc;
  fc.connections =
      static_cast<size_t>(env_u64("QTLS_MILLION_CONN_N", 1'000'000));
  fc.servers = static_cast<size_t>(env_u64("QTLS_MILLION_CONN_SERVERS", 8));
  fc.idle_bytes_per_conn = released;
  sim::FleetSim fleet(fc);
  const sim::FleetResult fr = fleet.run();

  const double sim_sec =
      static_cast<double>(fr.sim_duration) / static_cast<double>(sim::kSec);
  std::printf(
      "fleet: %llu conns on %zu servers in %.0f virtual s — "
      "%llu full, %llu resumed (hit rate %.4f, %llu cross-fleet, "
      "%llu old-epoch), peak live %zu (%.1f MB idle)\n",
      static_cast<unsigned long long>(fr.completed), fc.servers, sim_sec,
      static_cast<unsigned long long>(fr.full_handshakes),
      static_cast<unsigned long long>(fr.resumption_hits), fr.hit_rate(),
      static_cast<unsigned long long>(fr.cross_fleet_hits),
      static_cast<unsigned long long>(fr.old_epoch_hits), fr.peak_live,
      static_cast<double>(fr.peak_idle_bytes) / (1024.0 * 1024.0));
  std::printf(
      "BENCH_JSON {\"metric\":\"million_conn.fleet\",\"connections\":%llu,"
      "\"servers\":%zu,\"full_handshakes\":%llu,"
      "\"resumption_attempts\":%llu,\"resumption_hits\":%llu,"
      "\"hit_rate\":%.4f,\"old_epoch_hits\":%llu,\"cross_fleet_hits\":%llu,"
      "\"peak_live\":%zu,\"peak_idle_bytes\":%zu,\"sim_seconds\":%.0f,"
      "\"slab_allocs\":%llu,\"slab_frees\":%llu}\n",
      static_cast<unsigned long long>(fr.completed), fc.servers,
      static_cast<unsigned long long>(fr.full_handshakes),
      static_cast<unsigned long long>(fr.resumption_attempts),
      static_cast<unsigned long long>(fr.resumption_hits), fr.hit_rate(),
      static_cast<unsigned long long>(fr.old_epoch_hits),
      static_cast<unsigned long long>(fr.cross_fleet_hits), fr.peak_live,
      fr.peak_idle_bytes, sim_sec,
      static_cast<unsigned long long>(fr.slab_allocs),
      static_cast<unsigned long long>(fr.slab_frees));

  // ---- Gates ---------------------------------------------------------------
  int failures = 0;
  failures += gate(released <= kIdleBudget,
                   "idle bytes/connection over budget");
  failures += gate(shrink >= kMinShrink,
                   "idle footprint not reduced >= 2x vs retain baseline");
  failures += gate(fr.completed == fc.connections,
                   "fleet did not complete every connection");
  failures += gate(fr.resumption_attempts > 0,
                   "no resumption attempts (scenario broken)");
  failures += gate(fr.hit_rate() >= kMinHitRate,
                   "cross-fleet resumption hit rate below 0.99");
  failures += gate(fr.cross_fleet_hits > 0,
                   "no ticket resumed on a different server than sealed it");
  failures += gate(fr.slab_live_at_end == 0 && fr.slab_allocs == fr.slab_frees,
                   "fleet conn slab did not conserve");
  if (failures == 0) std::printf("ALL GATES PASS\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace qtls

int main() { return qtls::run(); }
