// Ablation: per-instance request-ring capacity. §3.2 designs a retry path
// for submission failures; this sweep shows when that path actually fires —
// small rings at device saturation — and that QTLS's throughput is
// insensitive to ring size once submissions stop failing.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Ablation: QAT request-ring capacity",
               "CPS and ring-full retries at device saturation (32 workers)");

  TextTable table({"ring", "kCPS", "retries/sec", "p99 latency ms"});
  for (size_t ring : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    RunParams p = base_params();
    p.config = Config::kQtls;
    p.workers = 32;  // drives the card into saturation (~100K limit)
    p.clients = 800;
    p.suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
    p.ring_capacity = ring;
    const RunResult r = sim::run_simulation(p);
    const double secs = static_cast<double>(p.duration) / sim::kSec;
    table.add_row(
        {std::to_string(ring), kcps(r.cps),
         format_double(static_cast<double>(r.submit_retries) / secs, 0),
         format_double(
             static_cast<double>(r.latency.percentile_nanos(99)) / 1e6, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Tiny rings reject submissions under burst (retry path exercised);\n"
      "beyond ~16 slots the retries vanish and CPS is capacity-bound. Deep\n"
      "rings only add queueing latency at saturation.\n");
  return 0;
}
