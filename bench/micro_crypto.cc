// Microbenchmarks of the crypto substrate (google-benchmark): the measured
// software costs that inform the cost model's SW column (sim/costs.h) —
// note this machine's absolute numbers differ from the paper's E5-2699 v4,
// which is why the simulator uses the paper-anchored constants instead.
#include <benchmark/benchmark.h>

#include "crypto/aes.h"
#include "crypto/ec.h"
#include "crypto/ec2m.h"
#include "crypto/gcm.h"
#include "crypto/keystore.h"

namespace qtls {
namespace {

void BM_RsaSign2048(benchmark::State& state) {
  const RsaPrivateKey& key = test_rsa2048();
  const Bytes digest = sha256(to_bytes("bench"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign_pkcs1(key, digest));
  }
}
BENCHMARK(BM_RsaSign2048)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify2048(benchmark::State& state) {
  const RsaPrivateKey& key = test_rsa2048();
  const Bytes digest = sha256(to_bytes("bench"));
  const Bytes sig = rsa_sign_pkcs1(key, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify_pkcs1(key.pub, digest, sig).is_ok());
  }
}
BENCHMARK(BM_RsaVerify2048)->Unit(benchmark::kMicrosecond);

void BM_EcdsaSignP256(benchmark::State& state) {
  HmacDrbg rng = make_test_drbg(1);
  const EcKeyPair& key = test_ec_key_p256();
  const Bytes digest = sha256(to_bytes("bench"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ecdsa_sign(curve_p256(), key.priv, digest, rng));
  }
}
BENCHMARK(BM_EcdsaSignP256)->Unit(benchmark::kMicrosecond);

void BM_EcdhP256(benchmark::State& state) {
  HmacDrbg rng = make_test_drbg(2);
  const EcKeyPair a = ec_generate_key(curve_p256(), rng);
  const EcKeyPair b = ec_generate_key(curve_p256(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdh_shared_secret(curve_p256(), a.priv, b.pub));
  }
}
BENCHMARK(BM_EcdhP256)->Unit(benchmark::kMicrosecond);

void BM_EcdhP384(benchmark::State& state) {
  HmacDrbg rng = make_test_drbg(3);
  const EcKeyPair a = ec_generate_key(curve_p384(), rng);
  const EcKeyPair b = ec_generate_key(curve_p384(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdh_shared_secret(curve_p384(), a.priv, b.pub));
  }
}
BENCHMARK(BM_EcdhP384)->Unit(benchmark::kMicrosecond);

void BM_EcdhBinary(benchmark::State& state) {
  const Ec2mCurve& curve =
      state.range(0) == 283 ? curve_k283() : curve_k409();
  HmacDrbg rng = make_test_drbg(4);
  const Ec2mKeyPair a = ec2m_generate_key(curve, rng);
  const Ec2mKeyPair b = ec2m_generate_key(curve, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec2m_shared_secret(curve, a.priv, b.pub));
  }
}
BENCHMARK(BM_EcdhBinary)->Arg(283)->Arg(409)->Unit(benchmark::kMicrosecond);

void BM_Tls12Prf(benchmark::State& state) {
  const Bytes secret(48, 0x5a);
  const Bytes seed(64, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tls12_prf(HashAlg::kSha256, secret, "key expansion", seed, 104));
  }
}
BENCHMARK(BM_Tls12Prf)->Unit(benchmark::kMicrosecond);

void BM_HkdfExpandLabel(benchmark::State& state) {
  const Bytes secret(32, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hkdf_expand_label(HashAlg::kSha256, secret, "key", {}, 16));
  }
}
BENCHMARK(BM_HkdfExpandLabel)->Unit(benchmark::kMicrosecond);

void BM_CbcHmacSeal16K(benchmark::State& state) {
  CbcHmacKeys keys;
  keys.enc_key = Bytes(16, 0x01);
  keys.mac_key = Bytes(20, 0x02);
  const Bytes iv(16, 0x03);
  const Bytes fragment(static_cast<size_t>(state.range(0)), 0x42);
  Bytes header = {23, 3, 3, 0, 0};
  header[3] = static_cast<uint8_t>(fragment.size() >> 8);
  header[4] = static_cast<uint8_t>(fragment.size());
  uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbc_hmac_seal(keys, seq++, header, iv, fragment));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CbcHmacSeal16K)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond);

void BM_GcmSeal(benchmark::State& state) {
  const Bytes key(16, 0x01);
  const Bytes nonce(12, 0x02);
  const Bytes aad(5, 0x03);
  const Bytes pt(static_cast<size_t>(state.range(0)), 0x42);
  Aes aes(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm_seal(aes, nonce, aad, pt));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GcmSeal)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond);

void BM_Sha256_1K(benchmark::State& state) {
  const Bytes data(1024, 0x77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1K);

void BM_AesBlock(benchmark::State& state) {
  Aes aes(Bytes(16, 0x01));
  uint8_t in[16] = {0};
  uint8_t out[16];
  for (auto _ : state) {
    aes.encrypt_block(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesBlock);

}  // namespace
}  // namespace qtls

BENCHMARK_MAIN();
