// Microbenchmarks of the async infrastructure: the fiber context-swap cost
// (the §4.1 "slight performance penalty" of fiber async vs stack async),
// the two notification schemes (the §3.4 kernel-bypass saving), and the
// SPSC ring ops under the device model's ring pairs.
#include <benchmark/benchmark.h>

#include <sys/eventfd.h>
#include <unistd.h>

#include "asyncx/job.h"
#include "asyncx/stack_async.h"
#include "asyncx/wait_ctx.h"
#include "common/spsc_ring.h"
#include "server/async_queue.h"

namespace qtls {
namespace {

void BM_FiberStartFinish(benchmark::State& state) {
  // Full job lifecycle without a pause: 2 context swaps + pool reuse.
  asyncx::WaitCtx wctx;
  for (auto _ : state) {
    asyncx::AsyncJob* job = nullptr;
    int ret = 0;
    asyncx::start_job(&job, &wctx, &ret, [] { return 1; });
    benchmark::DoNotOptimize(ret);
  }
}
BENCHMARK(BM_FiberStartFinish);

void BM_FiberPauseResume(benchmark::State& state) {
  // The steady-state cost QTLS pays per offloaded op: pause + resume.
  asyncx::WaitCtx wctx;
  asyncx::AsyncJob* job = nullptr;
  int ret = 0;
  auto fn = []() -> int {
    for (;;) asyncx::pause_job();
  };
  asyncx::start_job(&job, &wctx, &ret, fn);  // enter and pause
  for (auto _ : state) {
    asyncx::start_job(&job, &wctx, &ret, nullptr);  // resume -> pause
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  // Job intentionally left paused; the pool reclaims the stack at thread
  // exit. (One leaked fiber per process run, bounded.)
}
BENCHMARK(BM_FiberPauseResume);

void BM_StackAsyncSlot(benchmark::State& state) {
  // The stack-async alternative: flag flips only, no context swap.
  asyncx::StackAsyncSlot<int> slot;
  for (auto _ : state) {
    slot.mark_inflight();
    slot.complete(7);
    benchmark::DoNotOptimize(slot.take());
  }
}
BENCHMARK(BM_StackAsyncSlot);

void BM_NotifyKernelBypass(benchmark::State& state) {
  // Kernel-bypass notification: push the async handler + drain.
  server::AsyncEventQueue queue;
  int sink = 0;
  for (auto _ : state) {
    queue.push([&sink] { ++sink; });
    queue.drain();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_NotifyKernelBypass);

void BM_NotifyEventFd(benchmark::State& state) {
  // FD-based notification: eventfd write + read — two kernel transitions,
  // the cost §3.4 eliminates (epoll dispatch would add more).
  const int fd = eventfd(0, EFD_NONBLOCK);
  uint64_t one = 1, out = 0;
  for (auto _ : state) {
    [[maybe_unused]] ssize_t w = write(fd, &one, sizeof(one));
    [[maybe_unused]] ssize_t r = read(fd, &out, sizeof(out));
    benchmark::DoNotOptimize(out);
  }
  close(fd);
}
BENCHMARK(BM_NotifyEventFd);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<uint64_t> ring(256);
  uint64_t v = 0;
  for (auto _ : state) {
    ring.try_push(v++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

}  // namespace
}  // namespace qtls

BENCHMARK_MAIN();
