// Ablation: FD-based vs kernel-bypass notification (§3.4/§4.4), isolated
// from everything else — identical async framework and heuristic polling,
// only the event channel differs (this is exactly QAT+AH vs QTLS, swept
// across worker counts and workloads).
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Ablation: async event notification scheme",
               "eventfd-through-epoll vs application async queue");

  std::printf("Full TLS-RSA handshakes (5 offloads per connection):\n");
  TextTable hs({"workers", "fd kCPS", "kernel-bypass kCPS", "gain"});
  for (int workers : {2, 4, 8, 16, 24}) {
    RunParams p = base_params();
    p.workers = workers;
    p.clients = 400;
    p.suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
    p.config = Config::kQatAH;  // heuristic + FD
    const double fd = sim::run_simulation(p).cps;
    p.config = Config::kQtls;   // heuristic + kernel bypass
    const double kb = sim::run_simulation(p).cps;
    hs.add_row({std::to_string(workers), kcps(fd), kcps(kb),
                format_double((kb / fd - 1.0) * 100.0, 1) + "%"});
  }
  std::printf("%s\n", hs.render().c_str());

  std::printf("64KB transfers (cipher offload per 16KB record):\n");
  TextTable tr({"clients", "fd Gbps", "kernel-bypass Gbps", "gain"});
  for (int clients : {64, 128, 256}) {
    RunParams p = base_params();
    p.workers = 8;
    p.clients = clients;
    p.transfer_mode = true;
    p.file_bytes = 64 * 1024;
    p.config = Config::kQatAH;
    const double fd = sim::run_simulation(p).throughput_gbps;
    p.config = Config::kQtls;
    const double kb = sim::run_simulation(p).throughput_gbps;
    tr.add_row({std::to_string(clients), format_double(fd, 1),
                format_double(kb, 1),
                format_double((kb / fd - 1.0) * 100.0, 1) + "%"});
  }
  std::printf("%s\n", tr.render().c_str());
  std::printf(
      "The paper attributes +8%% CPS to kernel bypass (Fig. 7a); the gain\n"
      "scales with offloads per unit of useful work, so cipher-heavy\n"
      "transfers see more than handshakes do.\n");
  return 0;
}
