// Microbenchmarks of the offload pipeline on the real-time device backend:
// submit/poll round-trip costs and the end-to-end engine path, plus a
// throughput probe showing the §2.3 parallelism claim — concurrent requests
// from ONE instance engage multiple engines.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "crypto/keystore.h"
#include "engine/qat_engine.h"

namespace qtls {
namespace {

qat::DeviceConfig bench_device_config() {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 4;
  cfg.ring_capacity = 256;
  return cfg;
}

void BM_SubmitPollNoop(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  qat::CryptoInstance* inst = device.allocate_instance();
  for (auto _ : state) {
    qat::CryptoRequest req;
    req.kind = qat::OpKind::kPrfTls12;
    req.compute = [] { return true; };
    bool done = false;
    req.on_response = [&done](const qat::CryptoResponse&) { done = true; };
    while (!inst->submit(req)) std::this_thread::yield();
    while (!done) inst->poll();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SubmitPollNoop);

void BM_EnginePrfOffloadSync(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  engine::QatEngineConfig cfg;
  cfg.offload_mode = engine::OffloadMode::kSync;
  engine::QatEngineProvider qat(device.allocate_instance(), cfg);
  const Bytes secret(48, 1), seed(64, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qat.prf_tls12(HashAlg::kSha256, secret, "key expansion", seed, 104));
  }
}
BENCHMARK(BM_EnginePrfOffloadSync)->Unit(benchmark::kMicrosecond);

void BM_EngineRsaOffloadSync(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  engine::QatEngineConfig cfg;
  cfg.offload_mode = engine::OffloadMode::kSync;
  engine::QatEngineProvider qat(device.allocate_instance(), cfg);
  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("bench"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(qat.rsa_sign(key, digest));
  }
}
BENCHMARK(BM_EngineRsaOffloadSync)->Unit(benchmark::kMicrosecond);

// Batched concurrent offloads from one thread: with N engines available the
// wall time per op must shrink vs the sync (blocking) path — the paper's
// core parallelism argument, measurable on the real backend.
void BM_ConcurrentRsaBatch(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  engine::QatEngineConfig cfg;
  engine::QatEngineProvider qat(device.allocate_instance(), cfg);
  const RsaPrivateKey& key = test_rsa1024();
  const int batch = static_cast<int>(state.range(0));

  for (auto _ : state) {
    std::vector<asyncx::AsyncJob*> jobs(static_cast<size_t>(batch), nullptr);
    std::vector<std::unique_ptr<asyncx::WaitCtx>> wctxs;
    for (int i = 0; i < batch; ++i)
      wctxs.push_back(std::make_unique<asyncx::WaitCtx>());
    int ret = 0;
    int done = 0;
    auto fn = [&]() -> int {
      auto sig = qat.rsa_sign(key, sha256(to_bytes("x")));
      return sig.is_ok() ? 1 : 0;
    };
    for (int i = 0; i < batch; ++i)
      (void)asyncx::start_job(&jobs[static_cast<size_t>(i)],
                              wctxs[static_cast<size_t>(i)].get(), &ret, fn);
    while (done < batch) {
      qat.poll();
      done = 0;
      for (int i = 0; i < batch; ++i) {
        if (!jobs[static_cast<size_t>(i)]) {
          ++done;
          continue;
        }
        if (asyncx::start_job(&jobs[static_cast<size_t>(i)],
                              wctxs[static_cast<size_t>(i)].get(), &ret,
                              nullptr) == asyncx::JobStatus::kFinished)
          ++done;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_ConcurrentRsaBatch)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// §3.3's motivation measured: response delivery via userspace polling vs
// interrupt-style delivery from the engine thread (the closest a userspace
// model gets to the kernel-interrupt cost structure: cross-thread handoff
// and cache migration instead of a local ring read).
void BM_DeliveryPolledVsInterrupt(benchmark::State& state) {
  qat::DeviceConfig cfg = bench_device_config();
  cfg.delivery = state.range(0) ? qat::ResponseDelivery::kInterrupt
                                : qat::ResponseDelivery::kPolled;
  qat::QatDevice device(cfg);
  qat::CryptoInstance* inst = device.allocate_instance();
  for (auto _ : state) {
    std::atomic<bool> done{false};
    qat::CryptoRequest req;
    req.kind = qat::OpKind::kPrfTls12;
    req.compute = [] { return true; };
    req.on_response = [&done](const qat::CryptoResponse&) {
      done.store(true, std::memory_order_release);
    };
    while (!inst->submit(req)) std::this_thread::yield();
    while (!done.load(std::memory_order_acquire)) {
      if (cfg.delivery == qat::ResponseDelivery::kPolled) inst->poll();
    }
  }
  state.SetLabel(state.range(0) ? "interrupt" : "polled");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DeliveryPolledVsInterrupt)->Arg(0)->Arg(1);

}  // namespace
}  // namespace qtls

BENCHMARK_MAIN();
