// Microbenchmarks of the offload pipeline on the real-time device backend:
// submit/poll round-trip costs and the end-to-end engine path, plus a
// throughput probe showing the §2.3 parallelism claim — concurrent requests
// from ONE instance engage multiple engines.
// Besides the google-benchmark console table, the dispatch-path benchmarks
// append one machine-readable line per run to stdout, grep '^BENCH_JSON':
//   BENCH_JSON {"bench":"submit_poll_rtt","batch":8,"ns_per_op":...,
//               "ops_per_s":...}
// so CI or scripts can diff dispatch overhead across commits without
// parsing the human table.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <tuple>
#include <string>
#include <thread>
#include <vector>

#include "crypto/keystore.h"
#include "engine/qat_engine.h"

namespace qtls {
namespace {

// google-benchmark invokes each function several times while sizing the
// iteration count; keep only the last (converged) value per (bench, batch)
// and print the records once at exit.
std::vector<std::tuple<std::string, int, double>>& bench_json_records() {
  // Leaked: the atexit printer runs during static destruction, so the
  // records must not be destroyed before it.
  static auto* records = new std::vector<std::tuple<std::string, int, double>>;
  return *records;
}

void print_bench_json() {
  for (const auto& [bench, batch, ns_per_op] : bench_json_records())
    std::printf(
        "BENCH_JSON {\"bench\":\"%s\",\"batch\":%d,\"ns_per_op\":%.1f,"
        "\"ops_per_s\":%.0f}\n",
        bench.c_str(), batch, ns_per_op,
        ns_per_op > 0 ? 1e9 / ns_per_op : 0.0);
}

void emit_bench_json(const std::string& bench, int batch, double ns_per_op) {
  static const bool registered = [] {
    std::atexit(print_bench_json);
    return true;
  }();
  (void)registered;
  for (auto& [b, n, v] : bench_json_records()) {
    if (b == bench && n == batch) {
      v = ns_per_op;  // overwrite: the last run is the converged one
      return;
    }
  }
  bench_json_records().emplace_back(bench, batch, ns_per_op);
}

qat::DeviceConfig bench_device_config() {
  qat::DeviceConfig cfg;
  cfg.num_endpoints = 1;
  cfg.engines_per_endpoint = 4;
  cfg.ring_capacity = 256;
  return cfg;
}

void BM_SubmitPollNoop(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  qat::CryptoInstance* inst = device.allocate_instance();
  for (auto _ : state) {
    qat::CryptoRequest req;
    req.kind = qat::OpKind::kPrfTls12;
    req.compute = [] { return true; };
    bool done = false;
    req.on_response = [&done](const qat::CryptoResponse&) { done = true; };
    while (!inst->submit(req)) std::this_thread::yield();
    while (!done) inst->poll();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SubmitPollNoop);

// Submit -> poll round-trip through the lock-free dispatch path at batch
// sizes 1/8/32: one submit_batch (one engine wakeup for the whole batch),
// then poll until every response is back. Per-op RTT must shrink with batch
// size — the submit-side wakeup and the poll-side drain amortize.
void BM_BatchSubmitPollRtt(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  qat::CryptoInstance* inst = device.allocate_instance();
  const size_t batch = static_cast<size_t>(state.range(0));

  std::atomic<size_t> done{0};
  uint64_t total_ns = 0;
  size_t total_ops = 0;
  for (auto _ : state) {
    std::vector<qat::CryptoRequest> reqs(batch);
    for (size_t i = 0; i < batch; ++i) {
      reqs[i].request_id = i + 1;
      reqs[i].kind = qat::OpKind::kPrfTls12;
      reqs[i].compute = [] { return true; };
      reqs[i].on_response = [&done](const qat::CryptoResponse&) {
        done.fetch_add(1, std::memory_order_release);
      };
    }
    done.store(0, std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    std::span<qat::CryptoRequest> rest(reqs);
    while (!rest.empty()) {
      const size_t accepted = inst->submit_batch(rest);
      rest = rest.subspan(accepted);
      if (!rest.empty()) inst->poll();
    }
    while (done.load(std::memory_order_acquire) < batch) inst->poll();
    total_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    total_ops += batch;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_ops));
  state.SetLabel("batch=" + std::to_string(batch));
  if (total_ops > 0)
    emit_bench_json("submit_poll_rtt", static_cast<int>(batch),
                    static_cast<double>(total_ns) /
                        static_cast<double>(total_ops));
}
BENCHMARK(BM_BatchSubmitPollRtt)->Arg(1)->Arg(8)->Arg(32);

// Pure submit-side cost at batch sizes 1/8/32: only the submit_batch call
// is on the clock; the drain (poll until empty) runs off-clock between
// iterations. Measures the ring push + inflight gate + wakeup, i.e. the
// part the lock-free rework took off the old global-mutex path.
void BM_BatchSubmitThroughput(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  qat::CryptoInstance* inst = device.allocate_instance();
  const size_t batch = static_cast<size_t>(state.range(0));

  uint64_t submit_ns = 0;
  size_t submitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<qat::CryptoRequest> reqs(batch);
    for (size_t i = 0; i < batch; ++i) {
      reqs[i].request_id = i + 1;
      reqs[i].kind = qat::OpKind::kPrfTls12;
      reqs[i].compute = [] { return true; };
    }
    state.ResumeTiming();

    const auto t0 = std::chrono::steady_clock::now();
    std::span<qat::CryptoRequest> rest(reqs);
    while (!rest.empty()) {
      const size_t accepted = inst->submit_batch(rest);
      rest = rest.subspan(accepted);
      if (!rest.empty()) {
        // Ring full: drain off-clock, then keep submitting.
        state.PauseTiming();
        while (inst->inflight() > 0) inst->poll();
        state.ResumeTiming();
      }
    }
    submit_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    submitted += batch;

    state.PauseTiming();
    while (inst->inflight() > 0) inst->poll();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(submitted));
  state.SetLabel("batch=" + std::to_string(batch));
  if (submitted > 0)
    emit_bench_json("submit_throughput", static_cast<int>(batch),
                    static_cast<double>(submit_ns) /
                        static_cast<double>(submitted));
}
BENCHMARK(BM_BatchSubmitThroughput)->Arg(1)->Arg(8)->Arg(32);

void BM_EnginePrfOffloadSync(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  engine::QatEngineConfig cfg;
  cfg.offload_mode = engine::OffloadMode::kSync;
  engine::QatEngineProvider qat(device.allocate_instance(), cfg);
  const Bytes secret(48, 1), seed(64, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qat.prf_tls12(HashAlg::kSha256, secret, "key expansion", seed, 104));
  }
}
BENCHMARK(BM_EnginePrfOffloadSync)->Unit(benchmark::kMicrosecond);

void BM_EngineRsaOffloadSync(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  engine::QatEngineConfig cfg;
  cfg.offload_mode = engine::OffloadMode::kSync;
  engine::QatEngineProvider qat(device.allocate_instance(), cfg);
  const RsaPrivateKey& key = test_rsa1024();
  const Bytes digest = sha256(to_bytes("bench"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(qat.rsa_sign(key, digest));
  }
}
BENCHMARK(BM_EngineRsaOffloadSync)->Unit(benchmark::kMicrosecond);

// Batched concurrent offloads from one thread: with N engines available the
// wall time per op must shrink vs the sync (blocking) path — the paper's
// core parallelism argument, measurable on the real backend.
void BM_ConcurrentRsaBatch(benchmark::State& state) {
  qat::QatDevice device(bench_device_config());
  engine::QatEngineConfig cfg;
  engine::QatEngineProvider qat(device.allocate_instance(), cfg);
  const RsaPrivateKey& key = test_rsa1024();
  const int batch = static_cast<int>(state.range(0));

  for (auto _ : state) {
    std::vector<asyncx::AsyncJob*> jobs(static_cast<size_t>(batch), nullptr);
    std::vector<std::unique_ptr<asyncx::WaitCtx>> wctxs;
    for (int i = 0; i < batch; ++i)
      wctxs.push_back(std::make_unique<asyncx::WaitCtx>());
    int ret = 0;
    int done = 0;
    auto fn = [&]() -> int {
      auto sig = qat.rsa_sign(key, sha256(to_bytes("x")));
      return sig.is_ok() ? 1 : 0;
    };
    for (int i = 0; i < batch; ++i)
      (void)asyncx::start_job(&jobs[static_cast<size_t>(i)],
                              wctxs[static_cast<size_t>(i)].get(), &ret, fn);
    while (done < batch) {
      qat.poll();
      done = 0;
      for (int i = 0; i < batch; ++i) {
        if (!jobs[static_cast<size_t>(i)]) {
          ++done;
          continue;
        }
        if (asyncx::start_job(&jobs[static_cast<size_t>(i)],
                              wctxs[static_cast<size_t>(i)].get(), &ret,
                              nullptr) == asyncx::JobStatus::kFinished)
          ++done;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_ConcurrentRsaBatch)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// §3.3's motivation measured: response delivery via userspace polling vs
// interrupt-style delivery from the engine thread (the closest a userspace
// model gets to the kernel-interrupt cost structure: cross-thread handoff
// and cache migration instead of a local ring read).
void BM_DeliveryPolledVsInterrupt(benchmark::State& state) {
  qat::DeviceConfig cfg = bench_device_config();
  cfg.delivery = state.range(0) ? qat::ResponseDelivery::kInterrupt
                                : qat::ResponseDelivery::kPolled;
  qat::QatDevice device(cfg);
  qat::CryptoInstance* inst = device.allocate_instance();
  for (auto _ : state) {
    std::atomic<bool> done{false};
    qat::CryptoRequest req;
    req.kind = qat::OpKind::kPrfTls12;
    req.compute = [] { return true; };
    req.on_response = [&done](const qat::CryptoResponse&) {
      done.store(true, std::memory_order_release);
    };
    while (!inst->submit(req)) std::this_thread::yield();
    while (!done.load(std::memory_order_acquire)) {
      if (cfg.delivery == qat::ResponseDelivery::kPolled) inst->poll();
    }
  }
  state.SetLabel(state.range(0) ? "interrupt" : "polled");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DeliveryPolledVsInterrupt)->Arg(0)->Arg(1);

}  // namespace
}  // namespace qtls

BENCHMARK_MAIN();
