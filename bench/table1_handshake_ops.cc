// Table 1: server-side crypto operations per full handshake. Unlike the
// figure benches this runs the REAL TLS stack (handshakes over in-memory
// transports) and reads the per-connection op counters — the cross-check
// that the simulator's workload model charges for exactly what the protocol
// performs.
#include <cstdio>

#include "common/stats.h"
#include "crypto/keystore.h"
#include "engine/provider.h"
#include "net/memory_transport.h"
#include "tls/connection.h"

using namespace qtls;

namespace {

struct Row {
  const char* proto;
  tls::CipherSuite suite;
  const char* name;
  int expect_rsa;
  int expect_ecc;
  const char* expect_kdf;
};

tls::OpCounters run_handshake(tls::CipherSuite suite, bool resumed,
                              tls::ClientSession* session) {
  engine::SoftwareProvider server_provider(1), client_provider(2);
  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {suite};
  tls::TlsContext sctx(scfg, &server_provider);
  sctx.credentials().rsa_key = &test_rsa2048();
  sctx.credentials().ecdsa_p256 = &test_ec_key_p256();
  sctx.credentials().ecdsa_p384 = &test_ec_key_p384();

  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = {suite};
  tls::TlsContext cctx(ccfg, &client_provider);

  net::MemoryPipe pipe;
  tls::TlsConnection server(&sctx, &pipe.b());
  tls::TlsConnection client(&cctx, &pipe.a());
  if (resumed && session) client.offer_session(*session);

  for (int i = 0; i < 1000; ++i) {
    if (!client.handshake_complete()) (void)client.handshake();
    if (!server.handshake_complete()) (void)server.handshake();
    if (client.handshake_complete() && server.handshake_complete()) break;
  }
  if (session && client.established_session().has_value())
    *session = *client.established_session();
  return server.op_counters();
}

}  // namespace

int main() {
  std::printf(
      "=== Table 1 — server-side crypto operations for a full handshake ===\n"
      "(measured on the real TLS stack; KDF column is PRF for TLS 1.2, "
      "HKDF for TLS 1.3)\n\n");

  const Row rows[] = {
      {"1.2", tls::CipherSuite::kTlsRsaWithAes128CbcSha, "TLS-RSA", 1, 0, "4"},
      {"1.2", tls::CipherSuite::kEcdheRsaWithAes128CbcSha, "ECDHE-RSA", 1, 2,
       "4"},
      {"1.2", tls::CipherSuite::kEcdheEcdsaWithAes128CbcSha, "ECDHE-ECDSA", 0,
       3, "4"},
      {"1.3", tls::CipherSuite::kTls13Aes128Sha256, "ECDHE-RSA", 1, 2, "> 4"},
  };

  TextTable table({"TLS", "Cipher Suite", "RSA", "ECC", "PRF/HKDF",
                   "paper(RSA,ECC,KDF)"});
  bool all_match = true;
  for (const Row& row : rows) {
    const tls::OpCounters ops = run_handshake(row.suite, false, nullptr);
    const int kdf = ops.prf > 0 ? ops.prf : ops.hkdf;
    const bool match =
        ops.rsa == row.expect_rsa && ops.ecc == row.expect_ecc &&
        (row.expect_kdf[0] == '>' ? kdf > 4
                                  : kdf == std::atoi(row.expect_kdf));
    all_match = all_match && match;
    char paper[32];
    std::snprintf(paper, sizeof(paper), "%d, %d, %s %s", row.expect_rsa,
                  row.expect_ecc, row.expect_kdf, match ? "" : "MISMATCH");
    table.add_row({row.proto, row.name, std::to_string(ops.rsa),
                   std::to_string(ops.ecc), std::to_string(kdf), paper});
  }
  std::printf("%s\n", table.render().c_str());

  // §5.3's premise: the abbreviated handshake is PRF-only. The two
  // connections must share the server context (its session cache holds the
  // resumable state).
  engine::SoftwareProvider server_provider(1), client_provider(2);
  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  tls::TlsContext sctx(scfg, &server_provider);
  sctx.credentials().rsa_key = &test_rsa2048();
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = {tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  tls::TlsContext cctx(ccfg, &client_provider);

  tls::ClientSession session;
  {
    net::MemoryPipe pipe;
    tls::TlsConnection server(&sctx, &pipe.b());
    tls::TlsConnection client(&cctx, &pipe.a());
    for (int i = 0; i < 1000 && !(client.handshake_complete() &&
                                  server.handshake_complete());
         ++i) {
      (void)client.handshake();
      (void)server.handshake();
    }
    session = *client.established_session();
  }
  net::MemoryPipe pipe;
  tls::TlsConnection server(&sctx, &pipe.b());
  tls::TlsConnection client(&cctx, &pipe.a());
  client.offer_session(session);
  for (int i = 0; i < 1000 && !(client.handshake_complete() &&
                                server.handshake_complete());
       ++i) {
    (void)client.handshake();
    (void)server.handshake();
  }
  const tls::OpCounters abbrev = server.op_counters();
  std::printf(
      "Abbreviated ECDHE-RSA handshake: RSA=%d ECC=%d PRF=%d (paper: PRF "
      "calculations only)\n\n",
      abbrev.rsa, abbrev.ecc, abbrev.prf);
  std::printf("Table 1 reproduction: %s\n", all_match ? "MATCHES" : "DIVERGES");
  return all_match && abbrev.rsa == 0 && abbrev.ecc == 0 ? 0 : 1;
}
