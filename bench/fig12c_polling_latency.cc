// Figure 12c: polling schemes vs average response time — one worker,
// TLS-RSA full handshake per request, 1–64 clients (paper §5.6). Expected:
// 1 ms adds a multi-millisecond floor (one quantum per sequential offload);
// 10 us adds a small quantum; heuristic is lowest everywhere.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 12c",
               "polling schemes: response time vs clients (ms, 1 worker)");

  const std::vector<int> client_counts = {1, 2, 4, 6, 8, 12, 16, 32, 64};
  TextTable table({"clients", "10us", "1ms", "heuristic"});
  double t1ms_1 = 0, t10_1 = 0, heur_1 = 0;

  for (int clients : client_counts) {
    auto run_with = [&](Config cfg, sim::SimTime interval) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = 1;
      p.clients = clients;
      p.suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
      p.include_request = true;
      p.timer_interval = interval;
      return sim::run_simulation(p).latency.mean_nanos() / 1e6;
    };
    const double t10 = run_with(Config::kQatA, 10 * sim::kUs);
    const double t1ms = run_with(Config::kQatA, 1 * sim::kMs);
    const double heur = run_with(Config::kQtls, 10 * sim::kUs);
    if (clients == 1) {
      t10_1 = t10;
      t1ms_1 = t1ms;
      heur_1 = heur;
    }
    table.add_row({std::to_string(clients), format_double(t10, 2),
                   format_double(t1ms, 2), format_double(heur, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Response time in ms. Paper anchors at 1 client:\n");
  print_ratio("1ms penalty vs heuristic (ms)", t1ms_1 - heur_1, 2.5);
  print_ratio("10us penalty vs heuristic (ms)", t10_1 - heur_1, 0.03);
  std::printf("Heuristic lowest everywhere: %s\n",
              (heur_1 <= t10_1 && t10_1 < t1ms_1) ? "HOLDS" : "VIOLATED");
  return 0;
}
