// Multi-device topology bench (DESIGN.md §12), two planes:
//
//  1. Scaling curve (virtual time): closed-loop offload through
//     sim::SimDeviceTopology at 1/2/4 devices. Each device brings its own
//     engine set, so completed ops/sec must grow monotonically with the
//     fleet — the exit-status gate. (Wall clock can't show this on a
//     1-core host: the device model's service time is a busy-wait, so
//     every "parallel" engine serializes on the same CPU.)
//
//  2. Mid-bench device kill (wall clock, real stack): worker threads drive
//     sync offload through per-device engine lanes while device 0 is
//     hot-removed and later re-added. Gates: zero client-visible errors,
//     conservation (submitted == completed + deadline expiries on every
//     provider — the reset latch drains in-flight work through error
//     responses), load shifted within the breaker cooldown, and the
//     recovered device re-bound promptly after re_add.
//
// One machine-readable line per run, grep '^BENCH_JSON':
//   BENCH_JSON {"metric":"topology.scaling","devices":2,...}
//   BENCH_JSON {"metric":"topology.device_kill","shift_ms":...,
//               "recovery_ms":...,...}
// QTLS_BENCH_DURATION_MS scales the wall-clock phases (default 400).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "engine/qat_engine.h"
#include "qat/topology.h"
#include "sim/qat_sim.h"

using namespace qtls;

namespace {

// --- part 1: virtual-time scaling curve ------------------------------------

double sim_fleet_ops_per_sec(int devices) {
  constexpr int kWorkers = 16;
  constexpr sim::SimTime kService = 100 * sim::kUs;  // per-op engine time
  constexpr sim::SimTime kWindow = 1 * sim::kSec;

  sim::Simulator sim;
  sim::CostModel costs;
  sim::SimDeviceTopology topo(&sim, &costs, devices, /*endpoints=*/1,
                              /*engines_per_endpoint=*/4);
  // Every worker holds an instance on every device so spillover has
  // somewhere to go; affinity stripes workers across the fleet.
  std::vector<std::vector<sim::SimQatInstance*>> inst(kWorkers);
  for (int w = 0; w < kWorkers; ++w)
    for (int d = 0; d < devices; ++d)
      inst[static_cast<size_t>(w)].push_back(topo.allocate_instance(d));

  // Closed loop: each worker keeps exactly one op in flight, re-picking the
  // device per op (queue-depth-aware spillover under contention).
  std::function<void(int)> pump = [&](int w) {
    if (sim.now() >= kWindow) return;
    const int d = topo.pick_device(w % devices, /*spill_threshold=*/2);
    if (d < 0) return;
    const sim::SimTime done = inst[static_cast<size_t>(w)][static_cast<size_t>(
        d)]->submit_blocking(sim::SOp::kRsaPriv, kService);
    if (done == 0) {  // ring full: back off one service quantum
      sim.schedule_after(kService, [&pump, w] { pump(w); });
      return;
    }
    sim.schedule_at(done, [&pump, w] { pump(w); });
  };
  for (int w = 0; w < kWorkers; ++w) pump(w);
  sim.run_until(kWindow);
  return static_cast<double>(topo.completed_ops()) /
         (static_cast<double>(kWindow) / sim::kSec);
}

// --- part 2: wall-clock device kill ----------------------------------------

uint64_t now_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct KillOutcome {
  double shift_ms = -1;     // kill -> every worker completing ops again
  double recovery_ms = -1;  // re_add -> the revived device serving again
  uint64_t errors = 0;
  uint64_t ok = 0;
  bool conserved = true;
  uint64_t sw_fallbacks = 0;
};

KillOutcome run_device_kill(uint64_t phase_ms) {
  constexpr int kDevices = 2;
  constexpr int kWorkers = 4;

  qat::TopologyConfig tc;
  tc.num_devices = kDevices;
  tc.device.num_endpoints = 1;
  tc.device.engines_per_endpoint = 2;
  tc.device.ring_capacity = 64;
  tc.device.max_instances_per_endpoint = 8;
  tc.device.extra_service_ns = 100'000;  // device-like offload latency
  qat::DeviceTopology topo(tc);

  engine::QatEngineConfig ecfg;
  ecfg.offload_mode = engine::OffloadMode::kSync;
  ecfg.max_retries = 3;
  ecfg.retry_backoff_base_us = 20;
  ecfg.breaker_threshold = 2;
  ecfg.breaker_cooldown_ms = 100;

  std::vector<std::unique_ptr<engine::QatEngineProvider>> providers;
  for (int w = 0; w < kWorkers; ++w) {
    std::vector<engine::DeviceInstanceSet> sets;
    for (int d = 0; d < kDevices; ++d)
      sets.push_back(engine::DeviceInstanceSet{
          d, {topo.device(d).allocate_instance()}});
    providers.push_back(std::make_unique<engine::QatEngineProvider>(
        &topo, w % kDevices, std::move(sets), ecfg));
  }

  std::atomic<bool> stop{false};
  std::vector<std::atomic<uint64_t>> ok(kWorkers), errs(kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      const Bytes secret = to_bytes("bench-secret");
      const Bytes seed = to_bytes("seed");
      while (!stop.load(std::memory_order_acquire)) {
        auto r = providers[static_cast<size_t>(w)]->prf_tls12(
            HashAlg::kSha256, secret, "topology-bench", seed, 32);
        auto& slot = r.is_ok() ? ok[static_cast<size_t>(w)]
                               : errs[static_cast<size_t>(w)];
        slot.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  KillOutcome out;
  std::this_thread::sleep_for(std::chrono::milliseconds(phase_ms));

  // Kill device 0 mid-bench; "shifted" when every worker has completed new
  // ops since the kill (the dev-0-affine ones migrated to the survivor).
  std::vector<uint64_t> ok_at_kill(kWorkers);
  for (int w = 0; w < kWorkers; ++w)
    ok_at_kill[static_cast<size_t>(w)] =
        ok[static_cast<size_t>(w)].load(std::memory_order_relaxed);
  const uint64_t t_kill = now_ms();
  topo.hot_remove(0);
  const uint64_t kill_deadline = t_kill + phase_ms;
  while (now_ms() < kill_deadline) {
    if (out.shift_ms < 0) {
      bool all_advanced = true;
      for (int w = 0; w < kWorkers; ++w)
        all_advanced &= ok[static_cast<size_t>(w)].load(
                            std::memory_order_relaxed) >
                        ok_at_kill[static_cast<size_t>(w)];
      if (all_advanced)
        out.shift_ms = static_cast<double>(now_ms() - t_kill);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Re-add; "recovered" when the revived device serves requests again (the
  // generation bump lets tripped lanes re-probe without waiting out their
  // cooldown).
  const uint64_t dev0_at_readd = topo.device(0).fw_counters().total_responses();
  const uint64_t t_readd = now_ms();
  topo.re_add(0);
  const uint64_t readd_deadline = t_readd + phase_ms;
  while (now_ms() < readd_deadline) {
    if (out.recovery_ms < 0 &&
        topo.device(0).fw_counters().total_responses() > dev0_at_readd)
      out.recovery_ms = static_cast<double>(now_ms() - t_readd);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  for (int w = 0; w < kWorkers; ++w) {
    out.ok += ok[static_cast<size_t>(w)].load(std::memory_order_relaxed);
    out.errors += errs[static_cast<size_t>(w)].load(std::memory_order_relaxed);
    const engine::QatEngineStats& s = providers[static_cast<size_t>(w)]->stats();
    out.conserved &= s.submitted == s.completed + s.deadline_expiries;
    out.conserved &= providers[static_cast<size_t>(w)]->inflight_total() == 0;
    out.sw_fallbacks += s.sw_fallbacks;
  }
  return out;
}

}  // namespace

int main() {
  uint64_t phase_ms = 400;
  if (const char* env = std::getenv("QTLS_BENCH_DURATION_MS")) {
    const uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) phase_ms = v;
  }

  std::printf("=== Multi-device topology: scaling curve (virtual time) ===\n");
  bool gate_ok = true;
  double prev = 0;
  for (const int devices : {1, 2, 4}) {
    const double ops = sim_fleet_ops_per_sec(devices);
    std::printf("BENCH_JSON {\"metric\":\"topology.scaling\",\"devices\":%d,"
                "\"workers\":16,\"ops_per_sec\":%.0f}\n",
                devices, ops);
    if (ops <= prev) {
      std::printf("GATE FAIL: %d-device fleet (%.0f ops/s) did not beat the "
                  "previous size (%.0f ops/s)\n",
                  devices, ops, prev);
      gate_ok = false;
    }
    prev = ops;
  }

  std::printf("\n=== Mid-bench device kill (wall clock, %lu ms phases) ===\n",
              static_cast<unsigned long>(phase_ms));
  const KillOutcome k = run_device_kill(phase_ms);
  std::printf(
      "BENCH_JSON {\"metric\":\"topology.device_kill\",\"devices\":2,"
      "\"ops\":%llu,\"errors\":%llu,\"conserved\":%s,\"sw_fallbacks\":%llu,"
      "\"shift_ms\":%.0f,\"recovery_ms\":%.0f}\n",
      static_cast<unsigned long long>(k.ok),
      static_cast<unsigned long long>(k.errors), k.conserved ? "true" : "false",
      static_cast<unsigned long long>(k.sw_fallbacks), k.shift_ms,
      k.recovery_ms);

  if (k.errors != 0) {
    std::printf("GATE FAIL: %llu client-visible errors during kill/re-add\n",
                static_cast<unsigned long long>(k.errors));
    gate_ok = false;
  }
  if (!k.conserved) {
    std::printf("GATE FAIL: op conservation violated (submitted != "
                "completed + deadline_expiries)\n");
    gate_ok = false;
  }
  if (k.shift_ms < 0 || k.shift_ms > 100) {
    std::printf("GATE FAIL: load did not shift within the breaker cooldown "
                "(shift_ms=%.0f, cooldown=100)\n", k.shift_ms);
    gate_ok = false;
  }
  if (k.recovery_ms < 0 || k.recovery_ms > 500) {
    std::printf("GATE FAIL: revived device not re-bound promptly "
                "(recovery_ms=%.0f)\n", k.recovery_ms);
    gate_ok = false;
  }
  return gate_ok ? 0 : 1;
}
