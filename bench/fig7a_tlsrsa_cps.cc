// Figure 7a: TLS 1.2 full-handshake CPS with TLS-RSA (2048-bit), five
// configurations, 2–32 hyper-threaded workers; 2000 concurrent s_time
// clients (paper §5.2).
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 7a", "full handshake CPS, TLS-RSA (2048-bit)");

  const std::vector<int> worker_counts = {2, 4, 8, 16, 24, 32};
  TextTable table({"workers", "SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS",
                   "QTLS/SW"});
  double sw8 = 0, qtls8 = 0, qats8 = 0, qata8 = 0, qatah8 = 0;

  for (int workers : worker_counts) {
    std::vector<std::string> row = {std::to_string(workers) + "HT"};
    double sw = 0, qtls = 0;
    for (Config cfg : all_configs()) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = workers;
      p.clients = 400;
      p.suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
      const RunResult r = sim::run_simulation(p);
      row.push_back(kcps(r.cps));
      if (cfg == Config::kSW) sw = r.cps;
      if (cfg == Config::kQtls) qtls = r.cps;
      if (workers == 8) {
        switch (cfg) {
          case Config::kSW: sw8 = r.cps; break;
          case Config::kQatS: qats8 = r.cps; break;
          case Config::kQatA: qata8 = r.cps; break;
          case Config::kQatAH: qatah8 = r.cps; break;
          case Config::kQtls: qtls8 = r.cps; break;
        }
      }
    }
    row.push_back(format_double(qtls / sw, 1) + "x");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CPS in thousands. Paper anchors at 8HT:\n");
  print_ratio("QAT+S / SW (straight offload gain)", qats8 / sw8, 2.0);
  print_ratio("QAT+A / SW (async framework gain)", qata8 / sw8, 6.9);
  print_ratio("QAT+AH / QAT+A (heuristic polling)", qatah8 / qata8, 1.20);
  print_ratio("QTLS / QAT+AH (kernel-bypass notification)", qtls8 / qatah8,
              1.08);
  print_ratio("QTLS / SW (full framework)", qtls8 / sw8, 9.0);
  std::printf(
      "Expect the QTLS/QAT+AH curves to plateau near the DH8970 card limit "
      "(~100K CPS) by 32HT.\n");
  return 0;
}
