// Figure 7b: TLS 1.2 full-handshake CPS with ECDHE-RSA (2048-bit, P-256),
// 2–20 HT workers (paper §5.2). Expected shapes: QAT+S shows NO gain over
// SW (blocking eats the benefit with 3 asymmetric ops per handshake); QTLS
// ~5.5x with the 40K CPS card limit reached by 16 workers.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 7b", "full handshake CPS, ECDHE-RSA (2048-bit, P-256)");

  const std::vector<int> worker_counts = {2, 4, 8, 12, 16, 20};
  TextTable table({"workers", "SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS",
                   "QTLS/SW"});
  double sw16 = 0, qtls16 = 0, qats8 = 0, sw8 = 0;

  for (int workers : worker_counts) {
    std::vector<std::string> row = {std::to_string(workers) + "HT"};
    double sw = 0, qtls = 0;
    for (Config cfg : all_configs()) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = workers;
      p.clients = 400;
      p.suite = tls::CipherSuite::kEcdheRsaWithAes128CbcSha;
      p.curve = CurveId::kP256;
      const RunResult r = sim::run_simulation(p);
      row.push_back(kcps(r.cps));
      if (cfg == Config::kSW) sw = r.cps;
      if (cfg == Config::kQtls) qtls = r.cps;
      if (workers == 16 && cfg == Config::kSW) sw16 = r.cps;
      if (workers == 16 && cfg == Config::kQtls) qtls16 = r.cps;
      if (workers == 8 && cfg == Config::kSW) sw8 = r.cps;
      if (workers == 8 && cfg == Config::kQatS) qats8 = r.cps;
    }
    row.push_back(format_double(qtls / sw, 1) + "x");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CPS in thousands. Paper anchors:\n");
  print_ratio("QAT+S / SW at 8HT (no improvement)", qats8 / sw8, 1.0);
  print_ratio("QTLS / SW at 16HT (card limit reached)", qtls16 / sw16, 5.5);
  std::printf("QTLS at 16HT should sit near the 40K CPS ECDHE card limit "
              "(measured %.1fK).\n", qtls16 / 1000.0);
  return 0;
}
