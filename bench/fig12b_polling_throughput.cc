// Figure 12b: polling schemes under the transfer workload — 64 KB file,
// 8 workers, 16–512 concurrent clients (paper §5.6). Expected: with few
// clients the 1 ms timer collapses throughput (every record batch waits up
// to 1 ms); it converges toward the others as concurrency hides the
// latency. Heuristic best everywhere.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 12b",
               "polling schemes: 64KB transfer throughput vs clients (Gbps)");

  const std::vector<int> client_counts = {16, 32, 48, 64, 96, 128, 192, 256,
                                          512};
  TextTable table({"clients", "10us", "1ms", "heuristic"});
  double t1ms_16 = 0, heur_16 = 0, t1ms_512 = 0, heur_512 = 0;

  for (int clients : client_counts) {
    auto run_with = [&](Config cfg, sim::SimTime interval) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = 8;
      p.clients = clients;
      p.transfer_mode = true;
      p.file_bytes = 64 * 1024;
      p.timer_interval = interval;
      return sim::run_simulation(p).throughput_gbps;
    };
    const double t10 = run_with(Config::kQatA, 10 * sim::kUs);
    const double t1ms = run_with(Config::kQatA, 1 * sim::kMs);
    const double heur = run_with(Config::kQtls, 10 * sim::kUs);
    if (clients == 16) {
      t1ms_16 = t1ms;
      heur_16 = heur;
    }
    if (clients == 512) {
      t1ms_512 = t1ms;
      heur_512 = heur;
    }
    table.add_row({std::to_string(clients), format_double(t10, 1),
                   format_double(t1ms, 1), format_double(heur, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Throughput in Gbps. Paper anchors:\n");
  print_ratio("1ms collapse at 16 clients (heuristic/1ms, >>1)",
              heur_16 / t1ms_16, 3.0);
  print_ratio("convergence at 512 clients (heuristic/1ms, ~1)",
              heur_512 / t1ms_512, 1.0);
  return 0;
}
