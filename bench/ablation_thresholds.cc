// Ablation: the heuristic polling thresholds (§4.3's defaults of 48 for
// asymmetric-heavy traffic, 24 otherwise — "a bigger threshold is used if
// there exist inflight asymmetric crypto requests"). Sweeps the asym
// threshold under full-handshake load and the sym threshold under
// abbreviated load, at high concurrency where the efficiency constraint is
// the binding one.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

namespace {

void sweep(const char* title, double full_ratio) {
  std::printf("%s\n", title);
  TextTable table({"threshold", "kCPS", "polls/sec", "resp/poll"});
  for (size_t threshold : {1u, 4u, 12u, 24u, 48u, 96u, 192u}) {
    RunParams p = base_params();
    p.config = Config::kQtls;
    p.workers = 16;
    p.clients = 1200;  // deep per-worker backlog so coalescing matters
    p.suite = tls::CipherSuite::kEcdheRsaWithAes128CbcSha;
    p.full_handshake_ratio = full_ratio;
    p.heuristic.asym_threshold = threshold;
    p.heuristic.sym_threshold = threshold;
    const RunResult r = sim::run_simulation(p);
    const double secs = static_cast<double>(p.duration) / sim::kSec;
    const double polls_per_sec = static_cast<double>(r.heuristic_polls) / secs;
    const double ops_per_hs = full_ratio > 0.5 ? 7.0 : 3.0;
    const double resp_per_poll =
        polls_per_sec > 0 ? r.cps * ops_per_hs / polls_per_sec : 0;
    table.add_row({std::to_string(threshold), kcps(r.cps),
                   format_double(polls_per_sec / 1000.0, 1) + "k",
                   format_double(resp_per_poll, 1)});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  print_header("Ablation: heuristic polling thresholds",
               "CPS and poll efficiency vs threshold (16 workers)");
  sweep("Full ECDHE-RSA handshakes (asym-dominated; default threshold 48):",
        1.0);
  sweep("Abbreviated handshakes (PRF-only; default threshold 24):", 0.0);
  std::printf(
      "Low thresholds poll per-response (many tiny polls); very high\n"
      "thresholds defer to the timeliness constraint. The defaults sit on\n"
      "the flat top of the CPS curve while maximizing responses per poll.\n");
  return 0;
}
