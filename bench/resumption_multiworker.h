// Cross-worker resumption on the REAL stack: a WorkerPool of N SO_REUSEPORT
// workers sharing one resumption plane, driven by TCP loopback clients that
// establish a session once and then keep offering it. The kernel spreads
// reconnects across workers, so a high hit rate is only possible because the
// session cache / ticket-key ring is pool-wide — per-worker state would cap
// the hit rate near 1/N. Emits one BENCH_JSON line per run for harvesting.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>

#include "client/https_client.h"
#include "crypto/keystore.h"
#include "server/worker_pool.h"

namespace qtls::bench {

struct CrossWorkerResult {
  uint64_t connections = 0;
  uint64_t offered = 0;  // connections that offered an existing session
  uint64_t resumed = 0;  // offers the server accepted (abbreviated hs)
  uint64_t errors = 0;
  int workers_hit = 0;   // workers that completed at least one handshake
  double hit_rate = 0;   // resumed / offered
};

inline CrossWorkerResult run_cross_worker_resumption(
    const char* tag, int workers, bool session_tickets,
    double full_handshake_ratio, int clients, uint64_t requests_per_client) {
  qat::QatDevice device;

  server::WorkerPoolOptions options;
  options.workers = workers;
  options.tls_config.async_mode = true;
  options.tls_config.use_session_tickets = session_tickets;
  options.tls_config.cipher_suites = {
      tls::CipherSuite::kEcdheRsaWithAes128CbcSha};
  options.response_body_size = 512;

  server::WorkerPool pool(&device, &test_rsa2048(), options);
  CrossWorkerResult out;
  if (!pool.start(0).is_ok()) {
    std::fprintf(stderr, "cross-worker bench: pool failed to start\n");
    out.errors = 1;
    return out;
  }

  engine::SoftwareProvider client_provider;
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = options.tls_config.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);

  client::Pool cpool;
  const uint16_t port = pool.port();
  for (int i = 0; i < clients; ++i) {
    client::ClientOptions copts;
    copts.full_handshake_ratio = full_handshake_ratio;
    copts.max_requests = requests_per_client;
    cpool.add(std::make_unique<client::HttpsClient>(
        &cctx,
        [port]() -> int {
          auto fd = net::tcp_connect(port);
          return fd.is_ok() ? fd.value() : -1;
        },
        copts, 7000 + static_cast<uint64_t>(i)));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  bool all_done = false;
  while (!all_done && std::chrono::steady_clock::now() < deadline) {
    all_done = true;
    for (auto& c : cpool.clients()) {
      if (c->step()) all_done = false;
    }
  }
  pool.stop();

  const client::ClientStats cstats = cpool.aggregate();
  const server::WorkerPoolStats wstats = pool.stats();
  out.connections = cstats.connections;
  out.offered = cstats.offered;
  out.resumed = cstats.resumed;
  out.errors = cstats.errors + (all_done ? 0 : 1);
  for (uint64_t h : wstats.per_worker_handshakes) {
    if (h > 0) ++out.workers_hit;
  }
  out.hit_rate = out.offered > 0
                     ? static_cast<double>(out.resumed) /
                           static_cast<double>(out.offered)
                     : 0.0;

  std::printf(
      "BENCH_JSON {\"metric\":\"fig9.cross_worker\",\"tag\":\"%s\","
      "\"workers\":%d,\"tickets\":%s,\"connections\":%llu,\"offered\":%llu,"
      "\"resumed\":%llu,\"hit_rate\":%.4f,\"workers_hit\":%d,"
      "\"errors\":%llu}\n",
      tag, workers, session_tickets ? "true" : "false",
      static_cast<unsigned long long>(out.connections),
      static_cast<unsigned long long>(out.offered),
      static_cast<unsigned long long>(out.resumed), out.hit_rate,
      out.workers_hit, static_cast<unsigned long long>(out.errors));
  return out;
}

}  // namespace qtls::bench
