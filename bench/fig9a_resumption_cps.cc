// Figure 9a: session resumption with 100% abbreviated handshakes,
// ECDHE-RSA (2048-bit), 2–20 HT workers (paper §5.3). Expected shapes:
// QTLS gains 30–40% over SW (only PRF ops to offload); QAT+S is *below*
// SW — blocking on tiny PRF offloads costs more than computing them.
#include "figlib.h"
#include "resumption_multiworker.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 9a", "100% abbreviated handshakes, ECDHE-RSA");

  const std::vector<int> worker_counts = {2, 4, 8, 12, 16, 20};
  TextTable table({"workers", "SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS",
                   "QTLS/SW"});
  double sw8 = 0, qtls8 = 0, qats8 = 0;

  for (int workers : worker_counts) {
    std::vector<std::string> row = {std::to_string(workers) + "HT"};
    double sw = 0, qtls = 0;
    for (Config cfg : all_configs()) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = workers;
      p.clients = 400;
      p.suite = tls::CipherSuite::kEcdheRsaWithAes128CbcSha;
      p.full_handshake_ratio = 0.0;  // s_time `reuse`: all abbreviated
      const RunResult r = sim::run_simulation(p);
      row.push_back(kcps(r.cps));
      if (cfg == Config::kSW) sw = r.cps;
      if (cfg == Config::kQtls) qtls = r.cps;
      if (workers == 8 && cfg == Config::kQatS) qats8 = r.cps;
    }
    if (workers == 8) {
      sw8 = sw;
      qtls8 = qtls;
    }
    row.push_back(format_double(qtls / sw, 2) + "x");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CPS in thousands. Paper anchors at 8HT:\n");
  print_ratio("QTLS / SW (30-40%% expected)", qtls8 / sw8, 1.35);
  print_ratio("QAT+S / SW (below 1.0: blocking loses)", qats8 / sw8, 0.8);

  // Cross-worker variant on the real stack: 4 SO_REUSEPORT workers, one
  // shared resumption plane, session-ID cache mode. Every reconnect offers
  // the session; the kernel picks the worker, so the >90% hit rate shows
  // resumption works regardless of which worker the session landed on.
  std::printf("\nCross-worker resumption (real stack, session-ID cache):\n");
  const CrossWorkerResult x = run_cross_worker_resumption(
      "fig9a", /*workers=*/4, /*session_tickets=*/false,
      /*full_handshake_ratio=*/0.0, /*clients=*/32,
      /*requests_per_client=*/8);
  std::printf("  workers_hit=%d offered=%llu resumed=%llu hit_rate=%.1f%%\n",
              x.workers_hit, static_cast<unsigned long long>(x.offered),
              static_cast<unsigned long long>(x.resumed), x.hit_rate * 100.0);
  return x.errors == 0 && x.hit_rate > 0.9 ? 0 : 1;
}
