// Shared scaffolding for the figure-reproduction benches: each binary sweeps
// RunParams the way the paper's corresponding figure does and prints one row
// per x-value with one column per configuration, plus the paper-vs-measured
// ratio lines EXPERIMENTS.md quotes.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/metrics.h"
#include "sim/system.h"

namespace qtls::bench {

using sim::Config;
using sim::RunParams;
using sim::RunResult;

inline const std::vector<Config>& all_configs() {
  static const std::vector<Config> kConfigs = {
      Config::kSW, Config::kQatS, Config::kQatA, Config::kQatAH,
      Config::kQtls};
  return kConfigs;
}

// Sim duration scaling: QTLS_BENCH_DURATION_MS overrides the default
// measurement window (the default keeps every bench binary in the seconds
// range on one core).
inline sim::SimTime bench_duration() {
  if (const char* env = std::getenv("QTLS_BENCH_DURATION_MS"))
    return static_cast<sim::SimTime>(std::atoll(env)) * sim::kMs;
  return 1000 * sim::kMs;
}

inline RunParams base_params() {
  RunParams p;
  p.warmup = 600 * sim::kMs;
  p.duration = bench_duration();
  return p;
}

inline std::string kcps(double cps) { return format_double(cps / 1000.0, 1); }

// At-exit per-stage breakdown: every figure bench that drove the sim (or
// real) offload pipeline gets its stage histograms emitted as BENCH_JSON
// lines for free, one per non-empty "…stage.*" histogram in the global
// registry. grep '^BENCH_JSON' to harvest.
inline void print_stage_bench_json() {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& h : snap.histograms) {
    if (h.hist.count() == 0) continue;
    if (h.name.find(".stage.") == std::string::npos) continue;
    std::printf(
        "BENCH_JSON {\"metric\":\"%s\",\"count\":%llu,\"mean_ns\":%.1f,"
        "\"p50_ns\":%llu,\"p99_ns\":%llu,\"max_ns\":%llu}\n",
        h.name.c_str(), static_cast<unsigned long long>(h.hist.count()),
        h.hist.mean_nanos(),
        static_cast<unsigned long long>(h.hist.percentile_nanos(50)),
        static_cast<unsigned long long>(h.hist.percentile_nanos(99)),
        static_cast<unsigned long long>(h.hist.max_nanos()));
  }
}

inline void print_header(const char* figure, const char* description) {
  std::printf("=== %s — %s ===\n", figure, description);
  std::printf(
      "(virtual-time reproduction; shapes and ratios are the claim, not "
      "absolute numbers — see EXPERIMENTS.md)\n\n");
  static const bool registered = [] {
    std::atexit(print_stage_bench_json);
    return true;
  }();
  (void)registered;
}

inline void print_ratio(const char* label, double measured, double paper) {
  std::printf("  %-44s measured %6.2f   paper %6.2f\n", label, measured,
              paper);
}

}  // namespace qtls::bench
