// Figure 8: TLS 1.3 full-handshake CPS with ECDHE-RSA (2048-bit), 2–20 HT
// workers (paper §5.2). Expected shape: QTLS ~3.5x over SW — lower than the
// TLS 1.2 case because the HKDF-based key schedule cannot be offloaded
// through the QAT Engine and stays on the CPU.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 8", "TLS 1.3 full handshake CPS, ECDHE-RSA (2048-bit)");

  const std::vector<int> worker_counts = {2, 4, 8, 12, 16, 20};
  TextTable table({"workers", "SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS",
                   "QTLS/SW"});
  double sw20 = 0, qtls20 = 0;

  for (int workers : worker_counts) {
    std::vector<std::string> row = {std::to_string(workers) + "HT"};
    double sw = 0, qtls = 0;
    for (Config cfg : all_configs()) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = workers;
      p.clients = 400;
      p.suite = tls::CipherSuite::kTls13Aes128Sha256;
      p.curve = CurveId::kP256;
      const RunResult r = sim::run_simulation(p);
      row.push_back(kcps(r.cps));
      if (cfg == Config::kSW) sw = r.cps;
      if (cfg == Config::kQtls) qtls = r.cps;
    }
    if (workers == 20) {
      sw20 = sw;
      qtls20 = qtls;
    }
    row.push_back(format_double(qtls / sw, 1) + "x");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CPS in thousands. Paper anchor:\n");
  print_ratio("QTLS / SW at 20HT (HKDF stays on CPU)", qtls20 / sw20, 3.5);
  return 0;
}
