// Figure 7c: TLS 1.2 ECDHE-ECDSA full-handshake CPS across six NIST curves
// with four workers (paper §5.2). Expected shapes: for P-256 the software
// baseline is abnormally strong (Montgomery-friendly prime; SW beats QAT+S)
// yet QTLS still gains >70%; P-384 gains ~14x; the binary/Koblitz curves
// gain >12x.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 7c",
               "full handshake CPS, ECDHE-ECDSA across six curves (4 workers)");

  const std::vector<CurveId> curves = {CurveId::kP256, CurveId::kP384,
                                       CurveId::kB283, CurveId::kB409,
                                       CurveId::kK283, CurveId::kK409};
  TextTable table({"curve", "SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS",
                   "QTLS/SW"});
  double sw_p256 = 0, qtls_p256 = 0, qats_p256 = 0;
  double sw_p384 = 0, qtls_p384 = 0;
  double min_binary_ratio = 1e9;

  for (CurveId curve : curves) {
    std::vector<std::string> row = {curve_name(curve)};
    double sw = 0, qtls = 0;
    for (Config cfg : all_configs()) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = 4;
      p.clients = 400;
      p.suite = tls::CipherSuite::kEcdheEcdsaWithAes128CbcSha;
      p.curve = curve;
      const RunResult r = sim::run_simulation(p);
      row.push_back(kcps(r.cps));
      if (cfg == Config::kSW) sw = r.cps;
      if (cfg == Config::kQtls) qtls = r.cps;
      if (curve == CurveId::kP256 && cfg == Config::kQatS) qats_p256 = r.cps;
    }
    if (curve == CurveId::kP256) {
      sw_p256 = sw;
      qtls_p256 = qtls;
    } else if (curve == CurveId::kP384) {
      sw_p384 = sw;
      qtls_p384 = qtls;
    } else {
      min_binary_ratio = std::min(min_binary_ratio, qtls / sw);
    }
    row.push_back(format_double(qtls / sw, 1) + "x");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CPS in thousands. Paper anchors:\n");
  print_ratio("SW(P-256) / QAT+S(P-256)  (SW wins: Montgomery prime)",
              sw_p256 / qats_p256, 1.3);
  print_ratio("QTLS / SW on P-256 (still >1.7x)", qtls_p256 / sw_p256, 1.7);
  print_ratio("QTLS / SW on P-384", qtls_p384 / sw_p384, 14.0);
  print_ratio("QTLS / SW worst of B/K curves (>12x)", min_binary_ratio, 12.0);
  return 0;
}
