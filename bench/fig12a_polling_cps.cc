// Figure 12a: timer-based polling thread (10 us / 1 ms) vs the heuristic
// polling scheme — TLS-RSA full-handshake CPS across 2–32 workers under the
// async offload framework (paper §5.6). Expected: heuristic best; the 10 us
// timer pays ~20% (context switches + ineffective polls); 1 ms trails from
// retrieval latency.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

namespace {
RunParams polling_params(int workers) {
  RunParams p = base_params();
  p.workers = workers;
  p.clients = 400;
  p.suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
  return p;
}
}  // namespace

int main() {
  print_header("Figure 12a",
               "polling schemes: TLS-RSA full handshake CPS vs workers");

  const std::vector<int> worker_counts = {2, 4, 8, 12, 16, 20, 24, 28, 32};
  TextTable table({"workers", "10us", "1ms", "heuristic", "heur/10us"});
  double t10_8 = 0, heur_8 = 0;

  for (int workers : worker_counts) {
    // 10us timer (the QAT+A configuration).
    RunParams p10 = polling_params(workers);
    p10.config = Config::kQatA;
    p10.timer_interval = 10 * sim::kUs;
    const double t10 = sim::run_simulation(p10).cps;

    // 1ms timer.
    RunParams p1ms = polling_params(workers);
    p1ms.config = Config::kQatA;
    p1ms.timer_interval = 1 * sim::kMs;
    const double t1ms = sim::run_simulation(p1ms).cps;

    // Heuristic (the full QTLS configuration).
    RunParams ph = polling_params(workers);
    ph.config = Config::kQtls;
    const double heur = sim::run_simulation(ph).cps;

    if (workers == 8) {
      t10_8 = t10;
      heur_8 = heur;
    }
    table.add_row({std::to_string(workers), kcps(t10), kcps(t1ms), kcps(heur),
                   format_double(heur / t10, 2) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CPS in thousands. Paper anchor:\n");
  print_ratio("heuristic / 10us timer at 8 workers (~1.2x)", heur_8 / t10_8,
              1.2);
  return 0;
}
