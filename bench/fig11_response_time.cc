// Figure 11: average response time vs concurrency (1–256 end clients), one
// worker, TLS-RSA full handshake per request of a <100-byte page (§5.5).
// Expected shapes: at concurrency 1, QAT+S (busy-loop) is fastest, QTLS
// second (timeliness-triggered immediate poll), QAT+A third (10 us polling
// quantum), SW slowest (software RSA). As concurrency grows the async
// framework's concurrent offloads dominate: QAT+A ≈ -75% vs SW and QTLS
// ≈ -85% at 64 clients.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

namespace {
double mean_ms(const RunResult& r) { return r.latency.mean_nanos() / 1e6; }
}  // namespace

int main() {
  print_header("Figure 11", "average response time vs concurrency (ms)");

  const std::vector<int> concurrencies = {1, 2, 4, 6, 8, 12, 16, 32, 64, 128,
                                          256};
  const std::vector<Config> configs = {Config::kSW, Config::kQatS,
                                       Config::kQatA, Config::kQtls};
  TextTable table({"clients", "SW", "QAT+S", "QAT+A", "QTLS"});
  double sw1 = 0, qats1 = 0, qata1 = 0, qtls1 = 0;
  double sw64 = 0, qata64 = 0, qtls64 = 0;

  for (int clients : concurrencies) {
    std::vector<std::string> row = {std::to_string(clients)};
    for (Config cfg : configs) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = 1;
      p.clients = clients;
      p.suite = tls::CipherSuite::kTlsRsaWithAes128CbcSha;
      p.include_request = true;    // handshake + GET of a small page
      p.sync_busy_poll = true;     // QAT+S busy-loops here (§5.5)
      const RunResult r = sim::run_simulation(p);
      const double ms = mean_ms(r);
      row.push_back(format_double(ms, 2));
      if (clients == 1) {
        if (cfg == Config::kSW) sw1 = ms;
        if (cfg == Config::kQatS) qats1 = ms;
        if (cfg == Config::kQatA) qata1 = ms;
        if (cfg == Config::kQtls) qtls1 = ms;
      }
      if (clients == 64) {
        if (cfg == Config::kSW) sw64 = ms;
        if (cfg == Config::kQatA) qata64 = ms;
        if (cfg == Config::kQtls) qtls64 = ms;
      }
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Response time in ms. Paper anchors:\n");
  std::printf("  at c=1, ordering QAT+S < QTLS < QAT+A < SW: %s\n",
              (qats1 < qtls1 && qtls1 <= qata1 && qata1 < sw1) ? "HOLDS"
                                                               : "VIOLATED");
  print_ratio("QAT+A latency reduction vs SW at c=64 (~75%)",
              (1.0 - qata64 / sw64) * 100.0, 75.0);
  print_ratio("QTLS latency reduction vs SW at c=64 (~85%)",
              (1.0 - qtls64 / sw64) * 100.0, 85.0);
  std::printf(
      "Note: the paper's y-axis clips the SW curve at high concurrency; the "
      "text's -75%%/-85%% reductions are the comparable claim (DESIGN.md "
      "§5.4).\n");
  return 0;
}
