// Figure 9b: mixed traffic, full:abbreviated = 1:9 with ECDHE-RSA
// (2048-bit), 2–20 HT workers (paper §5.3). Expected: QTLS > 2x SW; the
// gain grows with the full-handshake percentage (1.3x at 0% full to 5.5x at
// 100%, which the extra sweep at the bottom shows).
#include "figlib.h"
#include "resumption_multiworker.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 9b", "full:abbreviated = 1:9, ECDHE-RSA");

  const std::vector<int> worker_counts = {2, 4, 8, 12, 16, 20};
  TextTable table({"workers", "SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS",
                   "QTLS/SW"});
  double sw8 = 0, qtls8 = 0;

  for (int workers : worker_counts) {
    std::vector<std::string> row = {std::to_string(workers) + "HT"};
    double sw = 0, qtls = 0;
    for (Config cfg : all_configs()) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = workers;
      p.clients = 400;
      p.suite = tls::CipherSuite::kEcdheRsaWithAes128CbcSha;
      p.full_handshake_ratio = 0.1;  // 10% full handshakes
      const RunResult r = sim::run_simulation(p);
      row.push_back(kcps(r.cps));
      if (cfg == Config::kSW) sw = r.cps;
      if (cfg == Config::kQtls) qtls = r.cps;
    }
    if (workers == 8) {
      sw8 = sw;
      qtls8 = qtls;
    }
    row.push_back(format_double(qtls / sw, 2) + "x");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CPS in thousands. Paper anchor at 8HT:\n");
  print_ratio("QTLS / SW at 1:9 mix (more than 2x)", qtls8 / sw8, 2.0);

  // §5.3's extra claim: the gain ranges 1.3x..5.5x as the full-handshake
  // share goes from 0% to 100% — sweep it at 8 workers.
  std::printf("\nGain vs full-handshake share (8HT):\n");
  TextTable sweep({"full%", "SW kCPS", "QTLS kCPS", "QTLS/SW"});
  for (double ratio : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    RunParams p = base_params();
    p.workers = 8;
    p.clients = 400;
    p.suite = tls::CipherSuite::kEcdheRsaWithAes128CbcSha;
    p.full_handshake_ratio = ratio;
    p.config = Config::kSW;
    const double sw = sim::run_simulation(p).cps;
    p.config = Config::kQtls;
    const double qtls = sim::run_simulation(p).cps;
    sweep.add_row({format_double(ratio * 100, 0), kcps(sw), kcps(qtls),
                   format_double(qtls / sw, 2) + "x"});
  }
  std::printf("%s", sweep.render().c_str());

  // Cross-worker variant on the real stack with session tickets and the
  // figure's 1:9 full:abbreviated mix: tickets sealed by one worker's
  // context unseal on any other because the key ring is pool-wide.
  std::printf("\nCross-worker resumption (real stack, session tickets):\n");
  const CrossWorkerResult x = run_cross_worker_resumption(
      "fig9b", /*workers=*/4, /*session_tickets=*/true,
      /*full_handshake_ratio=*/0.1, /*clients=*/32,
      /*requests_per_client=*/8);
  std::printf("  workers_hit=%d offered=%llu resumed=%llu hit_rate=%.1f%%\n",
              x.workers_hit, static_cast<unsigned long long>(x.offered),
              static_cast<unsigned long long>(x.resumed), x.hit_rate * 100.0);
  return x.errors == 0 && x.hit_rate > 0.9 ? 0 : 1;
}
