// Real-plane configuration comparison — unlike the fig* benches this runs
// the ACTUAL stack wall-clock: real crypto, real fibers, real epoll, real
// device threads, one worker, in-process clients over socketpairs. On a
// single-core host the absolute CPS is tiny, but the *ordering* of the
// configurations is the live demonstration of the paper's claim: straight
// offload wastes the worker on blocking; the async framework overlaps the
// accelerator with event handling.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "client/https_client.h"
#include "common/stats.h"
#include "crypto/keystore.h"
#include "engine/polling_thread.h"
#include "server/worker.h"

using namespace qtls;

namespace {

struct RunOutcome {
  double cps = 0;
  double mean_latency_ms = 0;
  uint64_t errors = 0;
};

RunOutcome run_config(bool use_qat, engine::OffloadMode mode,
                      server::PollScheme poll, server::NotifyScheme notify,
                      int seconds, int clients) {
  qat::DeviceConfig dcfg;
  dcfg.num_endpoints = 1;
  dcfg.engines_per_endpoint = 8;
  // Pad engine service so offload latency is device-like rather than a
  // single-core software RSA fighting the worker for the same CPU.
  dcfg.extra_service_ns = 0;
  qat::QatDevice device(dcfg);

  std::unique_ptr<engine::QatEngineProvider> qat;
  std::unique_ptr<engine::SoftwareProvider> software;
  engine::CryptoProvider* provider = nullptr;
  if (use_qat) {
    engine::QatEngineConfig qcfg;
    qcfg.offload_mode = mode;
    qcfg.self_poll_when_blocking = poll != server::PollScheme::kTimer;
    qat = std::make_unique<engine::QatEngineProvider>(
        device.allocate_instance(), qcfg);
    provider = qat.get();
  } else {
    software = std::make_unique<engine::SoftwareProvider>(1);
    provider = software.get();
  }

  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.async_mode = use_qat && mode == engine::OffloadMode::kAsync;
  scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
  tls::TlsContext sctx(scfg, provider);
  sctx.credentials().rsa_key = &test_rsa2048();

  server::WorkerConfig wcfg;
  wcfg.notify = notify;
  wcfg.poll = poll;
  wcfg.response_body_size = 128;
  server::Worker worker(&sctx, qat.get(), wcfg);

  std::unique_ptr<engine::PollingThread> poller;
  if (use_qat && poll == server::PollScheme::kTimer)
    poller = std::make_unique<engine::PollingThread>(
        std::vector<qat::CryptoInstance*>{qat->instance()},
        std::chrono::microseconds(10));

  engine::SoftwareProvider client_provider(2);
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = scfg.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);

  client::Pool pool;
  for (int i = 0; i < clients; ++i) {
    client::ClientOptions copts;  // full handshake per request
    pool.add(std::make_unique<client::HttpsClient>(
        &cctx,
        [&worker]() -> int {
          auto pair = net::make_socketpair();
          if (!pair.is_ok()) return -1;
          (void)worker.adopt(pair.value().second);
          return pair.value().first;
        },
        copts, 100 + static_cast<uint64_t>(i)));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    for (auto& c : pool.clients()) c->step();
    worker.run_once(0);
  }
  if (poller) poller->stop();

  const client::ClientStats stats = pool.aggregate();
  RunOutcome out;
  out.cps = static_cast<double>(stats.connections) / seconds;
  out.mean_latency_ms = stats.response_time.mean_nanos() / 1e6;
  out.errors = stats.errors;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 2;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 8;
  std::printf(
      "=== Real-plane configuration comparison (wall clock, 1 worker, %d "
      "clients, %ds each) ===\n"
      "Note: this host serializes everything on one core, so absolute CPS is\n"
      "small and the software RSA competes with the worker; the figure\n"
      "benches (virtual time) are the calibrated reproduction. This binary\n"
      "demonstrates the live pipeline ordering.\n\n",
      clients, seconds);

  TextTable table({"config", "CPS", "mean latency ms", "errors"});
  struct Row {
    const char* name;
    bool qat;
    engine::OffloadMode mode;
    server::PollScheme poll;
    server::NotifyScheme notify;
  };
  const Row rows[] = {
      {"SW", false, engine::OffloadMode::kSync, server::PollScheme::kInline,
       server::NotifyScheme::kKernelBypass},
      {"QAT+S", true, engine::OffloadMode::kSync,
       server::PollScheme::kInline, server::NotifyScheme::kKernelBypass},
      {"QAT+A (timer+fd)", true, engine::OffloadMode::kAsync,
       server::PollScheme::kTimer, server::NotifyScheme::kFd},
      {"QAT+AH (heur+fd)", true, engine::OffloadMode::kAsync,
       server::PollScheme::kHeuristic, server::NotifyScheme::kFd},
      {"QTLS (heur+kb)", true, engine::OffloadMode::kAsync,
       server::PollScheme::kHeuristic, server::NotifyScheme::kKernelBypass},
  };
  uint64_t total_errors = 0;
  for (const Row& row : rows) {
    const RunOutcome r =
        run_config(row.qat, row.mode, row.poll, row.notify, seconds, clients);
    total_errors += r.errors;
    table.add_row({row.name, format_double(r.cps, 0),
                   format_double(r.mean_latency_ms, 1),
                   std::to_string(r.errors)});
  }
  std::printf("%s", table.render().c_str());
  return total_errors == 0 ? 0 : 1;
}
