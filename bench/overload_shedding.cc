// Overload shedding bench (DESIGN.md §10): wall-clock goodput and handshake
// latency of one software worker as offered load crosses the admission cap.
// At each load multiple (1x / 2x / 4x the cap) the run is repeated with
// admission control on (past-cap accepts shed pre-handshake) and off
// (everything admitted). The claim under test: shedding trades the excess
// connections for bounded latency on the admitted ones — at 4x load the
// admitted handshake p99 stays within 2x of the uncontended run, while the
// uncontrolled worker lets every handshake pay the queueing delay.
//
// One machine-readable line per cell, grep '^BENCH_JSON':
//   BENCH_JSON {"metric":"overload.shedding","load_x":4,"shedding":true,...}
//
// Exit status is the regression check: nonzero when the admitted p99 at 4x
// with shedding exceeds 2x the uncontended (1x) p99.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "client/https_client.h"
#include "common/stats.h"
#include "crypto/keystore.h"
#include "server/worker.h"

using namespace qtls;

namespace {

constexpr size_t kCap = 4;  // admission cap (max concurrent handshakes)

struct CellOutcome {
  double goodput_rps = 0;
  double hs_p99_ms = 0;
  double hs_mean_ms = 0;
  uint64_t handshakes = 0;
  uint64_t shed = 0;
  uint64_t client_errors = 0;
};

CellOutcome run_cell(int load_x, bool shedding, int seconds) {
  engine::SoftwareProvider server_provider(1);
  tls::TlsContextConfig scfg;
  scfg.is_server = true;
  scfg.cipher_suites = {tls::CipherSuite::kTlsRsaWithAes128CbcSha};
  tls::TlsContext sctx(scfg, &server_provider);
  sctx.credentials().rsa_key = &test_rsa2048();

  server::WorkerConfig wcfg;
  wcfg.response_body_size = 128;
  if (shedding) wcfg.overload.max_handshaking = kCap;  // 0 = uncontrolled
  server::Worker worker(&sctx, nullptr, wcfg);

  engine::SoftwareProvider client_provider(2);
  tls::TlsContextConfig ccfg;
  ccfg.cipher_suites = scfg.cipher_suites;
  tls::TlsContext cctx(ccfg, &client_provider);

  client::Pool pool;
  const int clients = static_cast<int>(kCap) * load_x;
  for (int i = 0; i < clients; ++i) {
    client::ClientOptions copts;  // full handshake per request (CPS style)
    pool.add(std::make_unique<client::HttpsClient>(
        &cctx,
        [&worker]() -> int {
          auto pair = net::make_socketpair();
          if (!pair.is_ok()) return -1;
          (void)worker.adopt(pair.value().second);
          return pair.value().first;
        },
        copts, 100 + static_cast<uint64_t>(i)));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    for (auto& c : pool.clients()) c->step();
    worker.run_once(0);
  }

  const client::ClientStats stats = pool.aggregate();
  CellOutcome out;
  out.goodput_rps = static_cast<double>(stats.requests) / seconds;
  out.hs_p99_ms =
      static_cast<double>(stats.handshake_time.percentile_nanos(0.99)) / 1e6;
  out.hs_mean_ms = stats.handshake_time.mean_nanos() / 1e6;
  out.handshakes = stats.connections;
  out.shed = worker.overload_stats().shed;
  out.client_errors = stats.errors;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 2;
  std::printf(
      "=== Overload shedding (wall clock, 1 software worker, cap=%zu "
      "handshakes, %ds per cell) ===\n"
      "A shed connection costs the client a clean reconnect (counted as a\n"
      "client error here); the admitted ones keep their latency. Without\n"
      "shedding every connection is admitted and all of them queue.\n\n",
      kCap, seconds);

  TextTable table({"load", "shedding", "goodput rps", "hs p99 ms",
                   "hs mean ms", "handshakes", "shed", "client errs"});
  double uncontended_p99 = 0;
  double overloaded_shed_p99 = 0;
  for (const int load_x : {1, 2, 4}) {
    for (const bool shedding : {false, true}) {
      const CellOutcome r = run_cell(load_x, shedding, seconds);
      if (shedding && load_x == 1) uncontended_p99 = r.hs_p99_ms;
      if (shedding && load_x == 4) overloaded_shed_p99 = r.hs_p99_ms;
      table.add_row({std::to_string(load_x) + "x",
                     shedding ? "on" : "off",
                     format_double(r.goodput_rps, 0),
                     format_double(r.hs_p99_ms, 1),
                     format_double(r.hs_mean_ms, 1),
                     std::to_string(r.handshakes), std::to_string(r.shed),
                     std::to_string(r.client_errors)});
      std::printf(
          "BENCH_JSON {\"metric\":\"overload.shedding\",\"load_x\":%d,"
          "\"shedding\":%s,\"cap\":%zu,\"goodput_rps\":%.1f,"
          "\"hs_p99_ms\":%.2f,\"hs_mean_ms\":%.2f,\"handshakes\":%llu,"
          "\"shed\":%llu,\"client_errors\":%llu}\n",
          load_x, shedding ? "true" : "false", kCap, r.goodput_rps,
          r.hs_p99_ms, r.hs_mean_ms,
          static_cast<unsigned long long>(r.handshakes),
          static_cast<unsigned long long>(r.shed),
          static_cast<unsigned long long>(r.client_errors));
    }
  }
  std::printf("\n%s", table.render().c_str());

  // Regression gate: admission control must keep the admitted tail bounded
  // at 4x overload. (Wall-clock on a shared core is noisy; 2x is the
  // acceptance bound, and the margin in practice is far larger than the
  // noise.)
  if (uncontended_p99 > 0 && overloaded_shed_p99 > 2.0 * uncontended_p99) {
    std::printf("\nFAIL: shed-mode p99 at 4x (%.2f ms) exceeds 2x the "
                "uncontended p99 (%.2f ms)\n",
                overloaded_shed_p99, uncontended_p99);
    return 1;
  }
  std::printf("\nOK: shed-mode p99 at 4x (%.2f ms) within 2x uncontended "
              "(%.2f ms)\n",
              overloaded_shed_p99, uncontended_p99);
  return 0;
}
