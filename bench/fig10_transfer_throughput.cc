// Figure 10: secure data transfer throughput vs requested file size
// (4 KB – 1024 KB), AES128-SHA, 8 workers, 400 keepalive ApacheBench
// clients (paper §5.4). Expected shapes: near-parity at 4 KB (request
// overhead dominates), growing to >2x for QTLS at large sizes; QAT+A ~1.6x
// at 128 KB.
//
// Also the record-data-plane gate (DESIGN.md §11): every size runs QTLS a
// second time on the legacy coalesced TX plane. The bench FAILS (non-zero
// exit) unless the iovec-chain plane copies strictly fewer bytes per wire
// byte and is at least as fast at 128 KB and above — this is the regression
// tripwire `ctest -L bench-smoke` runs.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 10", "secure data transfer throughput (Gbps)");

  const std::vector<size_t> sizes_kb = {4, 16, 32, 64, 128, 256, 512, 1024};
  TextTable table({"file", "SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS",
                   "QTLS-legacy", "QTLS/SW"});
  double sw128 = 0, qtls128 = 0, qata128 = 0, sw1m = 0, qtls1m = 0;
  bool gate_ok = true;

  for (size_t kb : sizes_kb) {
    std::vector<std::string> row = {std::to_string(kb) + "KB"};
    double sw = 0, qtls = 0, qtls_copies = 0;
    for (Config cfg : all_configs()) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = 8;
      p.clients = 400;
      p.transfer_mode = true;
      p.file_bytes = kb * 1024;
      const RunResult r = sim::run_simulation(p);
      row.push_back(format_double(r.throughput_gbps, 1));
      std::printf(
          "BENCH_JSON {\"metric\":\"fig10.throughput_gbps\",\"config\":"
          "\"%s\",\"file_kb\":%zu,\"gbps\":%.3f,"
          "\"bytes_copied_per_byte\":%.3f}\n",
          sim::config_name(cfg), kb, r.throughput_gbps,
          r.bytes_copied_per_byte);
      if (cfg == Config::kSW) sw = r.throughput_gbps;
      if (cfg == Config::kQtls) {
        qtls = r.throughput_gbps;
        qtls_copies = r.bytes_copied_per_byte;
      }
      if (kb == 128 && cfg == Config::kQatA) qata128 = r.throughput_gbps;
    }
    // Pre-change baseline: QTLS on the legacy coalesced TX plane.
    RunParams lp = base_params();
    lp.config = Config::kQtls;
    lp.workers = 8;
    lp.clients = 400;
    lp.transfer_mode = true;
    lp.file_bytes = kb * 1024;
    lp.legacy_dataplane = true;
    const RunResult legacy = sim::run_simulation(lp);
    row.push_back(format_double(legacy.throughput_gbps, 1));
    std::printf(
        "BENCH_JSON {\"metric\":\"fig10.throughput_gbps\",\"config\":"
        "\"QTLS-legacy\",\"file_kb\":%zu,\"gbps\":%.3f,"
        "\"bytes_copied_per_byte\":%.3f}\n",
        kb, legacy.throughput_gbps, legacy.bytes_copied_per_byte);

    // Data-plane gate: fewer copies everywhere, no throughput regression
    // at the sizes the batched plane targets (128 KB+).
    if (qtls_copies >= legacy.bytes_copied_per_byte) {
      std::printf(
          "GATE FAIL at %zuKB: copies/byte %.3f (new) >= %.3f (legacy)\n", kb,
          qtls_copies, legacy.bytes_copied_per_byte);
      gate_ok = false;
    }
    if (kb >= 128 && qtls < legacy.throughput_gbps) {
      std::printf(
          "GATE FAIL at %zuKB: throughput %.3f Gbps (new) < %.3f (legacy)\n",
          kb, qtls, legacy.throughput_gbps);
      gate_ok = false;
    }

    if (kb == 128) {
      sw128 = sw;
      qtls128 = qtls;
    }
    if (kb == 1024) {
      sw1m = sw;
      qtls1m = qtls;
    }
    row.push_back(format_double(qtls / sw, 2) + "x");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Throughput in Gbps (40 GbE NIC cap). Paper anchors:\n");
  print_ratio("QAT+A / SW at 128KB (~1.6x)", qata128 / sw128, 1.6);
  print_ratio("QTLS / SW at 128KB (>2x)", qtls128 / sw128, 2.0);
  print_ratio("QTLS / SW at 1024KB (>2x)", qtls1m / sw1m, 2.2);
  std::printf("data-plane gate: %s\n", gate_ok ? "PASS" : "FAIL");
  return gate_ok ? 0 : 1;
}
