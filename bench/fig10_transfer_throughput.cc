// Figure 10: secure data transfer throughput vs requested file size
// (4 KB – 1024 KB), AES128-SHA, 8 workers, 400 keepalive ApacheBench
// clients (paper §5.4). Expected shapes: near-parity at 4 KB (request
// overhead dominates), growing to >2x for QTLS at large sizes; QAT+A ~1.6x
// at 128 KB.
#include "figlib.h"

using namespace qtls;
using namespace qtls::bench;

int main() {
  print_header("Figure 10", "secure data transfer throughput (Gbps)");

  const std::vector<size_t> sizes_kb = {4, 16, 32, 64, 128, 256, 512, 1024};
  TextTable table({"file", "SW", "QAT+S", "QAT+A", "QAT+AH", "QTLS",
                   "QTLS/SW"});
  double sw128 = 0, qtls128 = 0, qata128 = 0, sw1m = 0, qtls1m = 0;

  for (size_t kb : sizes_kb) {
    std::vector<std::string> row = {std::to_string(kb) + "KB"};
    double sw = 0, qtls = 0;
    for (Config cfg : all_configs()) {
      RunParams p = base_params();
      p.config = cfg;
      p.workers = 8;
      p.clients = 400;
      p.transfer_mode = true;
      p.file_bytes = kb * 1024;
      const RunResult r = sim::run_simulation(p);
      row.push_back(format_double(r.throughput_gbps, 1));
      if (cfg == Config::kSW) sw = r.throughput_gbps;
      if (cfg == Config::kQtls) qtls = r.throughput_gbps;
      if (kb == 128 && cfg == Config::kQatA) qata128 = r.throughput_gbps;
    }
    if (kb == 128) {
      sw128 = sw;
      qtls128 = qtls;
    }
    if (kb == 1024) {
      sw1m = sw;
      qtls1m = qtls;
    }
    row.push_back(format_double(qtls / sw, 2) + "x");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Throughput in Gbps (40 GbE NIC cap). Paper anchors:\n");
  print_ratio("QAT+A / SW at 128KB (~1.6x)", qata128 / sw128, 1.6);
  print_ratio("QTLS / SW at 128KB (>2x)", qtls128 / sw128, 2.0);
  print_ratio("QTLS / SW at 1024KB (>2x)", qtls1m / sw1m, 2.2);
  return 0;
}
